"""Fast perf smoke: the hot-path optimizations must not regress.

Six guards, all at the small scale so the step stays fast:

* the vectorized reporting kernel is at worst 1.5x slower than the scalar
  baseline on the largest small-grid workload (a generous margin — on real
  workloads it is several times *faster*; the margin only guards against a
  vectorization regression without flaking on noisy CI runners);
* the coalescing ``AsyncSearchService`` beats naive sequential serving on
  a repeated-pattern workload (the dedupe + refinement amortization is a
  work reduction, not a timing race, so the margin can be strict);
* mmap-loaded archives stay within a bounded factor of the legacy
  rebuild-on-load path;
* a version-3 archive is at most 0.6x the version-2 bytes on the
  reference sparse-tower workload, with mmap cold start no slower than
  v2's (modulo a noise tolerance) — the acceptance margins of the
  payload-schema archive format;
* the HTTP serving tier driven in-process (no sockets) sustains load at
  every replica count, and adding a replica never *costs* throughput
  beyond a noise margin — replica routing must be overhead-free even
  where single-core CI cannot show a parallel speedup;
* the compacted in-RAM representation is at most 0.6x the wide bytes at
  every size, and the shared-memory worker spec stays O(array count) —
  spawning a process pool must never pickle per-worker index bytes.

The full sweeps stay in the default-scale benchmark runs
(``python -m repro.bench --figure query-kernel --figure serving-throughput
--figure archive-size --json``).
"""

from repro.bench.experiments import (
    SMALL_SCALE,
    query_kernel,
    serving_throughput,
    shard_build,
)


class TestQueryKernelSmoke:
    def test_vectorized_not_slower_than_margin(self):
        table = query_kernel(SMALL_SCALE)
        scalar = table.series_by_label("scalar (occ/s)")
        vectorized = table.series_by_label("vectorized (occ/s)")
        assert scalar.xs == vectorized.xs == list(SMALL_SCALE.kernel_occ_targets)
        # Assert on the largest workload of the small grid: tiny batches pay
        # fixed numpy overhead per frontier round, so the vectorized win
        # only shows from a few hundred occurrences up — which is also the
        # only regime where reporting throughput matters.
        assert vectorized.values[-1] >= scalar.values[-1] / 1.5, (
            f"vectorized kernel {vectorized.values[-1]:.0f} occ/s is more than "
            f"1.5x slower than scalar {scalar.values[-1]:.0f} occ/s"
        )

    def test_speedup_series_is_consistent(self):
        table = query_kernel(SMALL_SCALE)
        scalar = table.series_by_label("scalar (occ/s)")
        vectorized = table.series_by_label("vectorized (occ/s)")
        speedup = table.series_by_label("speedup (x)")
        for fast, slow, ratio in zip(
            vectorized.values, scalar.values, speedup.values
        ):
            assert ratio > 0.0
            assert abs(ratio - fast / slow) / ratio < 1e-6


class TestShardBuildSmoke:
    def test_reports_all_worker_counts(self):
        table = shard_build(SMALL_SCALE)
        build_time = table.series_by_label("build time (s)")
        speedup = table.series_by_label("speedup vs workers=1 (x)")
        assert build_time.xs == list(SMALL_SCALE.shard_build_workers)
        assert all(value > 0.0 for value in build_time.values)
        # workers=1 is its own baseline by construction.
        assert speedup.values[0] == 1.0


class TestServingSmoke:
    """The serving-throughput acceptance margins, at smoke scale."""

    def test_coalescing_beats_naive_and_mmap_beats_rebuild(self):
        table = serving_throughput(SMALL_SCALE)
        naive = table.series_by_label("naive sequential (req/s)")
        coalesced = table.series_by_label("coalesced service (req/s)")
        assert naive.xs == coalesced.xs == list(SMALL_SCALE.collection_sizes)
        # Assert on the largest cell: the workload repeats each distinct
        # request 8x, so the coalesced side evaluates 1/8th of the queries
        # — a work reduction asyncio overhead cannot eat on any runner.
        assert coalesced.values[-1] > naive.values[-1], (
            f"coalesced {coalesced.values[-1]:.0f} req/s did not beat "
            f"naive {naive.values[-1]:.0f} req/s"
        )
        # No cold-start assertion here: since the block-optimum scan was
        # vectorized, the v1 rebuild is cheap at smoke scale and the
        # listing engine's load time is dominated by the shared
        # collection-manifest parse, so racing the two sides would only
        # measure runner noise.  The cold-start guard lives in
        # TestArchiveSizeSmoke, on the sparse-tower workload where the
        # RMQ payload actually dominates (and the committed default-scale
        # BENCH_serving_throughput.json still shows v2 mmap ahead of the
        # v1 rebuild at every size).


class TestArchiveSizeSmoke:
    """The archive-v3 acceptance margins, at smoke scale.

    One :func:`archive_size` run feeds both assertions (the experiment
    builds an engine and saves three archives per size, so re-running it
    per assertion would double the step's cost).
    """

    def test_v3_size_and_cold_start_margins(self):
        from repro.bench.experiments import archive_size

        table = archive_size(SMALL_SCALE)
        v2 = table.series_by_label("archive v2 (bytes)")
        v3 = table.series_by_label("archive v3 (bytes)")
        cold_v1 = table.series_by_label("cold start v1 rebuild (ms)")
        cold_v2 = table.series_by_label("cold start v2 mmap (ms)")
        cold_v3 = table.series_by_label("cold start v3 mmap (ms)")
        assert v2.xs == v3.xs == list(SMALL_SCALE.string_sizes)
        # The acceptance margin: v3 stores Fischer–Heun block positions
        # instead of full sparse tables, so on the reference workload it
        # must be at most 0.6x the v2 bytes (in practice ~0.1-0.2x).
        for n, size_v2, size_v3 in zip(v2.xs, v2.values, v3.values):
            assert size_v3 <= 0.6 * size_v2, (
                f"v3 archive ({size_v3:.0f} B) is more than 0.6x the v2 "
                f"archive ({size_v2:.0f} B) at n={n}"
            )
        # Cold start must not regress: restoring from block positions plus
        # an O(n/b log n) summary rebuild has to stay in the same league
        # as v2's zero-copy table restore.  At smoke scale every load is
        # a few milliseconds, so the margin (1.5x over min-of-5 timings —
        # the noise-robust cold-start estimator) is a regression bound;
        # the committed default scale (BENCH_archive_size.json) shows v3
        # within ~10% of v2 and both 2-3x faster than the v1 rebuild.
        assert cold_v3.values[-1] <= cold_v2.values[-1] * 1.5, (
            f"v3 mmap cold start {cold_v3.values[-1]:.2f}ms is more than "
            f"1.5x the v2 mmap cold start {cold_v2.values[-1]:.2f}ms"
        )
        # And it stays in the same league as the legacy rebuild-everything
        # path (same tolerance) — the reason the serialized payloads exist.
        assert cold_v3.values[-1] <= cold_v1.values[-1] * 1.5, (
            f"v3 mmap cold start {cold_v3.values[-1]:.2f}ms is more than "
            f"1.5x the v1 rebuild-on-load {cold_v1.values[-1]:.2f}ms"
        )


class TestNetworkServingSmoke:
    """The network-serving tier, driven in-process — no sockets in CI.

    The experiment routes the load generator through
    ``SearchHttpApp.dispatch`` over mmap-loaded replica sets, so the whole
    HTTP → service → replica-routing → engine path is exercised without
    binding a port.  On a single-core runner replica parallelism cannot
    show a speedup, so the guard is the other direction: a second replica
    must not *cost* throughput beyond a generous noise margin (the
    least-loaded routing is a dictionary pick under one lock).
    """

    def test_replica_routing_is_overhead_free(self):
        from repro.bench.experiments import network_serving

        table = network_serving(SMALL_SCALE)
        qps = table.series_by_label("QPS (req/s)")
        assert qps.xs == list(SMALL_SCALE.serving_replica_counts)
        assert all(value > 0.0 for value in qps.values)
        one_replica, two_replicas = qps.values[0], qps.values[1]
        assert two_replicas >= one_replica / 1.5, (
            f"2-replica QPS {two_replicas:.0f} fell more than 1.5x below "
            f"1-replica QPS {one_replica:.0f}: replica routing overhead"
        )
        # Latency percentiles exist for every replica count and are
        # ordered p50 <= p95 <= p99 within each.
        p50 = table.series_by_label("p50 latency (ms)")
        p95 = table.series_by_label("p95 latency (ms)")
        p99 = table.series_by_label("p99 latency (ms)")
        for low, mid, high in zip(p50.values, p95.values, p99.values):
            assert 0.0 < low <= mid <= high

    def test_observability_layer_stays_cheap(self):
        """Scraping the always-on metrics registry costs ≤ 10% QPS.

        Mode 0 of ``observability-overhead`` is today's serving stack with
        tracing off — every counter already routed through ``repro.obs``;
        mode 1 adds a ``/metrics`` scraper under load; mode 2 traces every
        request.  The budget is 10% for exposition; at smoke scale a
        single run is noise-dominated (±15% run-to-run on shared
        runners), so the guard takes the best of two runs and allows 5
        extra points of noise on top of the budget.  The committed
        default-scale BENCH_obs_overhead.json records the real deltas.
        Full tracing is opt-in per request, so its guard is only that the
        traced path stays within 2.5x — a hang/regression tripwire, not a
        performance promise.
        """
        from repro.bench.experiments import observability_overhead

        best_metrics_ratio = 0.0
        best_tracing_ratio = 0.0
        for _ in range(2):
            table = observability_overhead(SMALL_SCALE)
            ratios = table.series_by_label("QPS vs tracing-off (ratio)").values
            assert ratios[0] == 1.0  # mode 0 is its own baseline
            best_metrics_ratio = max(best_metrics_ratio, ratios[1])
            best_tracing_ratio = max(best_tracing_ratio, ratios[2])
            if best_metrics_ratio >= 1 / 1.10 and best_tracing_ratio >= 1 / 2.5:
                break
        assert best_metrics_ratio >= 1 / 1.15, (
            f"metrics exposition cost {(1 - best_metrics_ratio) * 100:.1f}% QPS, "
            "over the 10% budget (plus noise allowance)"
        )
        assert best_tracing_ratio >= 1 / 2.5, (
            f"full tracing cost {(1 - best_tracing_ratio) * 100:.1f}% QPS — "
            "far beyond span-recording overhead; something is blocking"
        )


class TestMemoryFrontierSmoke:
    """The succinct-payload acceptance margins, at smoke scale.

    One :func:`memory_frontier` run feeds every assertion (the experiment
    builds a wide and a compact engine per size and spawns one process
    pool, so re-running it per assertion would triple the step's cost).
    No warm-QPS gate: the compact representation trades the O(1) sparse
    RMQ table for an O(log n) summary, so its query throughput is
    legitimately lower on large inputs — the committed default-scale
    BENCH_memory_frontier.json records both series; the guards here are
    the space and boundary contracts only.
    """

    def test_compact_ratio_and_worker_spec_margins(self):
        from repro.bench.experiments import memory_frontier

        table = memory_frontier(SMALL_SCALE)
        wide = table.series_by_label("in-RAM wide (bytes)")
        compact = table.series_by_label("in-RAM compact (bytes)")
        assert wide.xs == compact.xs == list(SMALL_SCALE.string_sizes)
        # The acceptance margin: narrowing dtypes and dropping derived
        # sparse tables must reach at most 0.6x the wide in-RAM bytes on
        # the reference workload (in practice ~0.1-0.2x).
        for n, wide_bytes, compact_bytes in zip(wide.xs, wide.values, compact.values):
            assert compact_bytes <= 0.6 * wide_bytes, (
                f"compact in-RAM ({compact_bytes:.0f} B) is more than 0.6x "
                f"the wide in-RAM ({wide_bytes:.0f} B) at n={n}"
            )
        # The worker-boundary contract: the shared-memory spec pickles a
        # block name plus an array layout — O(array count), never O(n).
        # The absolute cap is generous (the measured specs are ~1.3 KB);
        # the relative cap pins the spec far below the legacy pickled
        # payload it replaced, so a regression back to shipping array
        # bytes trips both.
        spec = table.series_by_label("shm worker spec pickled (bytes)")
        payload = table.series_by_label("legacy payload spec pickled (bytes)")
        for n, spec_bytes, payload_bytes in zip(spec.xs, spec.values, payload.values):
            assert spec_bytes <= 32768, (
                f"shm worker spec pickles {spec_bytes:.0f} B at n={n} — "
                "O(index) bytes are crossing the process boundary again"
            )
            assert spec_bytes * 20 <= payload_bytes, (
                f"shm worker spec ({spec_bytes:.0f} B) is not well below the "
                f"legacy pickled payload ({payload_bytes:.0f} B) at n={n}"
            )
        # Cold spawn completed and was timed (the experiment routes a real
        # count() through the freshly spawned process pool).
        cold = table.series_by_label("process-pool cold spawn (ms)")
        assert all(value > 0.0 for value in cold.values)
