"""Fast perf smoke: the hot-path optimizations must not regress.

Three guards, all at the small scale so the step stays fast:

* the vectorized reporting kernel is at worst 1.5x slower than the scalar
  baseline on the largest small-grid workload (a generous margin — on real
  workloads it is several times *faster*; the margin only guards against a
  vectorization regression without flaking on noisy CI runners);
* the coalescing ``AsyncSearchService`` beats naive sequential serving on
  a repeated-pattern workload (the dedupe + refinement amortization is a
  work reduction, not a timing race, so the margin can be strict);
* a version-2 archive loaded with ``mmap=True`` cold-starts faster than a
  version-1 archive's decompress + RMQ rebuild.

The full sweeps stay in the default-scale benchmark runs
(``python -m repro.bench --figure query-kernel --figure serving-throughput
--json``).
"""

from repro.bench.experiments import (
    SMALL_SCALE,
    query_kernel,
    serving_throughput,
    shard_build,
)


class TestQueryKernelSmoke:
    def test_vectorized_not_slower_than_margin(self):
        table = query_kernel(SMALL_SCALE)
        scalar = table.series_by_label("scalar (occ/s)")
        vectorized = table.series_by_label("vectorized (occ/s)")
        assert scalar.xs == vectorized.xs == list(SMALL_SCALE.kernel_occ_targets)
        # Assert on the largest workload of the small grid: tiny batches pay
        # fixed numpy overhead per frontier round, so the vectorized win
        # only shows from a few hundred occurrences up — which is also the
        # only regime where reporting throughput matters.
        assert vectorized.values[-1] >= scalar.values[-1] / 1.5, (
            f"vectorized kernel {vectorized.values[-1]:.0f} occ/s is more than "
            f"1.5x slower than scalar {scalar.values[-1]:.0f} occ/s"
        )

    def test_speedup_series_is_consistent(self):
        table = query_kernel(SMALL_SCALE)
        scalar = table.series_by_label("scalar (occ/s)")
        vectorized = table.series_by_label("vectorized (occ/s)")
        speedup = table.series_by_label("speedup (x)")
        for fast, slow, ratio in zip(
            vectorized.values, scalar.values, speedup.values
        ):
            assert ratio > 0.0
            assert abs(ratio - fast / slow) / ratio < 1e-6


class TestShardBuildSmoke:
    def test_reports_all_worker_counts(self):
        table = shard_build(SMALL_SCALE)
        build_time = table.series_by_label("build time (s)")
        speedup = table.series_by_label("speedup vs workers=1 (x)")
        assert build_time.xs == list(SMALL_SCALE.shard_build_workers)
        assert all(value > 0.0 for value in build_time.values)
        # workers=1 is its own baseline by construction.
        assert speedup.values[0] == 1.0


class TestServingSmoke:
    """The serving-throughput acceptance margins, at smoke scale."""

    def test_coalescing_beats_naive_and_mmap_beats_rebuild(self):
        table = serving_throughput(SMALL_SCALE)
        naive = table.series_by_label("naive sequential (req/s)")
        coalesced = table.series_by_label("coalesced service (req/s)")
        cold_v1 = table.series_by_label("cold start v1 rebuild (ms)")
        cold_v2 = table.series_by_label("cold start v2 mmap (ms)")
        assert naive.xs == coalesced.xs == list(SMALL_SCALE.collection_sizes)
        # Assert on the largest cell: the workload repeats each distinct
        # request 8x, so the coalesced side evaluates 1/8th of the queries
        # — a work reduction asyncio overhead cannot eat on any runner.
        assert coalesced.values[-1] > naive.values[-1], (
            f"coalesced {coalesced.values[-1]:.0f} req/s did not beat "
            f"naive {naive.values[-1]:.0f} req/s"
        )
        # v2 mmap skips the decompress and the per-length RMQ rebuilds the
        # v1 loader pays; at the largest small-scale size that is a ~2x gap.
        assert cold_v2.values[-1] < cold_v1.values[-1], (
            f"mmap cold start {cold_v2.values[-1]:.1f}ms was not faster than "
            f"v1 rebuild-on-load {cold_v1.values[-1]:.1f}ms"
        )
