"""Tests for repro.bench.experiments (figure generators at the small scale)."""

import pytest

from repro.bench import workloads
from repro.bench.experiments import (
    EXPERIMENTS,
    SCALES,
    SMALL_SCALE,
    ExperimentScale,
    ablation_transformation,
    figure_7a,
    figure_7d,
    figure_8a,
    figure_9c,
    run_experiments,
    sharding_scaling,
)

#: An even smaller grid than SMALL_SCALE so the whole module stays fast.
TINY_SCALE = ExperimentScale(
    name="tiny",
    string_sizes=(200, 400),
    collection_sizes=(200, 400),
    thetas=(0.2,),
    tau_min=0.1,
    tau=0.2,
    tau_grid=(0.1, 0.15),
    tau_min_grid=(0.1, 0.2),
    pattern_lengths=(3, 5),
    mixed_query_lengths=(3, 6),
    listing_query_lengths=(3, 5),
    patterns_per_length=2,
    fixed_string_size=300,
    fixed_collection_size=300,
    tau_min_panel_size=200,
    query_repeats=1,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    workloads.clear_caches()
    yield
    workloads.clear_caches()


class TestRegistry:
    def test_all_paper_figures_present(self):
        for name in (
            "fig7a", "fig7b", "fig7c", "fig7d",
            "fig8a", "fig8b", "fig8c", "fig8d",
            "fig9a", "fig9b", "fig9c",
        ):
            assert name in EXPERIMENTS

    def test_scales_registered(self):
        assert set(SCALES) == {"small", "default", "large"}
        assert SCALES["small"] is SMALL_SCALE

    def test_serving_experiments_present(self):
        assert "ablation-batch" in EXPERIMENTS
        assert "sharding-scaling" in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["fig99z"], TINY_SCALE)


class TestFigureGenerators:
    def test_fig7a_shape(self):
        table = figure_7a(TINY_SCALE)
        assert table.figure_id == "fig7a"
        assert len(table.series) == len(TINY_SCALE.thetas)
        for series in table.series:
            assert series.xs == list(TINY_SCALE.string_sizes)
            assert all(value >= 0.0 for value in series.values)

    def test_fig7d_uses_pattern_lengths(self):
        table = figure_7d(TINY_SCALE)
        for series in table.series:
            assert set(series.xs) <= set(TINY_SCALE.pattern_lengths)

    def test_fig8a_shape(self):
        table = figure_8a(TINY_SCALE)
        assert table.figure_id == "fig8a"
        for series in table.series:
            assert series.xs == list(TINY_SCALE.collection_sizes)

    def test_fig9c_reports_megabytes(self):
        table = figure_9c(TINY_SCALE)
        for series in table.series:
            # Index space grows with n.
            assert series.values == sorted(series.values)
            assert all(value > 0.0 for value in series.values)

    def test_ablation_transformation_expansion_decreases_with_tau_min(self):
        table = ablation_transformation(TINY_SCALE)
        for series in table.series:
            # Larger tau_min => shorter factors => smaller expansion.
            assert series.values[0] >= series.values[-1]

    def test_run_experiments_returns_tables_in_order(self):
        tables = run_experiments(["fig9c", "fig7a"], TINY_SCALE)
        assert [table.figure_id for table in tables] == ["fig9c", "fig7a"]


@pytest.mark.slow
class TestShardingScaling:
    """The sharding-scaling serving experiment (slow: builds engines at
    three shard counts and replays the workload 10x each)."""

    def test_reports_throughput_and_hit_rate(self):
        table = sharding_scaling(TINY_SCALE)
        assert table.figure_id == "sharding-scaling"
        series = {entry.label: entry for entry in table.series}
        assert set(series) == {
            "cold search_many (req/s)",
            "warm search_many (req/s)",
            "cache hit rate (%)",
        }
        for entry in series.values():
            assert entry.xs == [1, 2, 4]
        # The workload is replayed 10x, so 9 of every 10 lookups hit.
        assert all(value >= 89.9 for value in series["cache hit rate (%)"].values)
        # Warm rounds are answered from the cache: strictly faster than cold.
        for cold, warm in zip(
            series["cold search_many (req/s)"].values,
            series["warm search_many (req/s)"].values,
        ):
            assert cold > 0.0
            assert warm > cold
