"""Tests for repro.bench.workloads (cached workload builders)."""

import pytest

from repro.bench import workloads
from repro.core.general_index import GeneralUncertainStringIndex
from repro.core.listing import UncertainStringListingIndex


@pytest.fixture(autouse=True)
def fresh_caches():
    workloads.clear_caches()
    yield
    workloads.clear_caches()


class TestSubstringWorkload:
    def test_builds_consistent_workload(self):
        work = workloads.substring_workload(
            300, 0.3, tau_min=0.1, query_lengths=(5, 10), patterns_per_length=2
        )
        assert isinstance(work.index, GeneralUncertainStringIndex)
        assert len(work.string) == 300
        assert len(work.patterns) == 4
        assert work.theta == pytest.approx(0.3)
        assert work.tau_min == pytest.approx(0.1)

    def test_index_cached_across_query_length_changes(self):
        first = workloads.substring_workload(
            300, 0.3, tau_min=0.1, query_lengths=(5,), patterns_per_length=1
        )
        second = workloads.substring_workload(
            300, 0.3, tau_min=0.1, query_lengths=(10,), patterns_per_length=1
        )
        assert first.index is second.index
        assert first.string is second.string

    def test_different_tau_min_not_shared(self):
        first = workloads.substring_workload(
            300, 0.3, tau_min=0.1, query_lengths=(5,), patterns_per_length=1
        )
        second = workloads.substring_workload(
            300, 0.3, tau_min=0.2, query_lengths=(5,), patterns_per_length=1
        )
        assert first.index is not second.index
        assert first.string is second.string

    def test_query_lengths_longer_than_string_skipped(self):
        work = workloads.substring_workload(
            100, 0.2, tau_min=0.1, query_lengths=(5, 5000), patterns_per_length=2
        )
        assert {len(p) for p in work.patterns} == {5}


class TestListingWorkload:
    def test_builds_consistent_workload(self):
        work = workloads.listing_workload(
            300, 0.3, tau_min=0.1, query_lengths=(4, 8), patterns_per_length=2
        )
        assert isinstance(work.index, UncertainStringListingIndex)
        assert work.collection.total_positions >= 250
        assert len(work.patterns) == 4

    def test_index_cached(self):
        first = workloads.listing_workload(
            300, 0.3, tau_min=0.1, query_lengths=(4,), patterns_per_length=1
        )
        second = workloads.listing_workload(
            300, 0.3, tau_min=0.1, query_lengths=(8,), patterns_per_length=1
        )
        assert first.index is second.index

    def test_clear_caches(self):
        first = workloads.substring_workload(
            200, 0.1, tau_min=0.1, query_lengths=(5,), patterns_per_length=1
        )
        workloads.clear_caches()
        second = workloads.substring_workload(
            200, 0.1, tau_min=0.1, query_lengths=(5,), patterns_per_length=1
        )
        assert first.index is not second.index
