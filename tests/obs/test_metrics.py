"""Metrics registry: naming discipline, quantiles, exposition, lock safety."""

import math
import random
import re
import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    BUCKET_BOUNDS_MS,
    METRIC_TABLE,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.metrics import check_metric_name


def legacy_percentile(values, q):
    """The load generator's historical nearest-rank formula (pre-obs)."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    return ordered[rank]


class TestNamingDiscipline:
    def test_unregistered_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError, match="not registered"):
            registry.counter("made_up_total")

    def test_counter_must_end_in_total(self):
        # A registered histogram name used as a counter: the table lookup
        # passes, the suffix check must still fire.
        with pytest.raises(ValidationError, match="_total"):
            check_metric_name("service_latency_ms", "counter")

    def test_gauge_and_histogram_need_a_unit_suffix(self):
        with pytest.raises(ValidationError, match="unit suffix"):
            check_metric_name("service_submitted_total", "gauge")
        with pytest.raises(ValidationError, match="unit suffix"):
            check_metric_name("service_submitted_total", "histogram")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("cache_size_count")
        with pytest.raises(ValidationError, match="another kind"):
            registry.histogram("cache_size_count")

    def test_table_names_all_pass_their_own_discipline(self):
        for name in METRIC_TABLE:
            kind = "counter" if name.endswith("_total") else "gauge"
            check_metric_name(name, kind)


class TestCountersAndGauges:
    def test_counter_inc_reset_value(self):
        counter = MetricsRegistry().counter("cache_hits_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_same_name_and_labels_return_the_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("fault_calls_total", site="cache-access")
        b = registry.counter("fault_calls_total", site="cache-access")
        c = registry.counter("fault_calls_total", site="batch-flush")
        assert a is b
        assert a is not c

    def test_gauge_set_incdec_and_high_water(self):
        gauge = MetricsRegistry().gauge("service_in_flight_count")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 2.0
        gauge.set_max(7.0)
        gauge.set_max(1.0)  # lower: ignored
        assert gauge.value == 7.0

    def test_callback_gauge_reads_live_state(self):
        queue = [1, 2, 3]
        gauge = MetricsRegistry().gauge(
            "service_queue_depth_count", fn=lambda: float(len(queue))
        )
        assert gauge.value == 3.0
        queue.pop()
        assert gauge.value == 2.0


class TestHistogram:
    def test_count_sum_mean_max(self):
        histogram = MetricsRegistry().histogram("service_latency_ms")
        for value in (1.0, 3.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 12.0
        assert histogram.mean == 4.0
        assert histogram.max == 8.0

    def test_empty_histogram_is_all_zero(self):
        histogram = MetricsRegistry().histogram("service_latency_ms")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.99) == 0.0
        assert histogram.quantiles((0.5,)) == {0.5: 0.0}

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_quantiles_match_the_legacy_nearest_rank_formula(self, seed):
        rng = random.Random(seed)
        values = [rng.expovariate(0.1) for _ in range(257)]
        histogram = MetricsRegistry().histogram(
            "loadgen_latency_ms", sample_limit=None
        )
        for value in values:
            histogram.observe(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == legacy_percentile(values, q)
        batch = histogram.quantiles((0.5, 0.95, 0.99))
        assert batch == {q: legacy_percentile(values, q) for q in (0.5, 0.95, 0.99)}

    def test_sample_ring_keeps_the_recent_window(self):
        histogram = MetricsRegistry().histogram(
            "service_latency_ms", sample_limit=4
        )
        for value in range(10):
            histogram.observe(float(value))
        # Quantiles are exact over the newest 4 samples (6, 7, 8, 9) …
        assert histogram.quantile(0.0) == 6.0
        assert histogram.quantile(1.0) == 9.0
        # … while count/sum keep the full history.
        assert histogram.count == 10
        assert histogram.sum == 45.0

    def test_bucket_counts_are_cumulative_and_end_at_infinity(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("service_latency_ms")
        for value in (0.1, 0.2, 1.0, 100.0, 1e9):  # last one beyond the bounds
            histogram.observe(value)
        (sample,) = registry.collect()
        bounds = [bound for bound, _ in sample.buckets]
        counts = [count for _, count in sample.buckets]
        assert bounds == list(BUCKET_BOUNDS_MS) + [math.inf]
        assert counts == sorted(counts)
        assert counts[-1] == sample.count == 5
        # 0.1 fits the first (0.125 ms) bucket; 1e9 only in +Inf.
        assert counts[0] == 1
        assert counts[-2] == 4


SAMPLE_LINE = re.compile(r"^([a-z0-9_]+)(\{[^}]*\})? (\+Inf|[-+0-9.e]+)$")


class TestExposition:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("cache_hits_total").inc(3)
        registry.gauge("cache_size_count").set(2.0)
        registry.histogram("service_latency_ms").observe(1.5)
        registry.counter("fault_fired_total", site="cache-access").inc()
        registry.counter("fault_fired_total", site="batch-flush").inc(2)
        return registry

    def test_text_format_parses(self):
        text = render_prometheus(self.build_registry().collect())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_LINE.match(line), line

    def test_one_help_and_type_block_per_name(self):
        # The two fault counters come from distinct label sets — exposition
        # must merge them under a single HELP/TYPE header.
        text = render_prometheus(self.build_registry().collect())
        assert text.count("# HELP fault_fired_total ") == 1
        assert text.count("# TYPE fault_fired_total counter") == 1
        assert 'fault_fired_total{site="cache-access"} 1' in text
        assert 'fault_fired_total{site="batch-flush"} 2' in text

    def test_histogram_series_shape(self):
        text = render_prometheus(self.build_registry().collect())
        assert 'service_latency_ms_bucket{le="+Inf"} 1' in text
        assert "service_latency_ms_sum 1.5" in text
        assert "service_latency_ms_count 1" in text

    def test_extra_labels_are_prepended(self):
        registry = MetricsRegistry()
        registry.counter("cache_hits_total").inc()
        (sample,) = registry.collect(extra_labels={"replica": "1"})
        assert sample.labels == (("replica", "1"),)
        assert 'cache_hits_total{replica="1"} 1' in render_prometheus([sample])

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("fault_fired_total", site='we"ird\\').inc()
        text = render_prometheus(registry.collect())
        assert 'site="we\\"ird\\\\"' in text


class TestLockSafety:
    def test_concurrent_increments_never_lose_updates(self):
        counter = MetricsRegistry().counter("cache_hits_total")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_shared_lock_snapshots_are_tear_free(self):
        # Two counters always incremented together under hold(): any
        # snapshot taken under the same hold must see them equal.
        lock = threading.RLock()
        registry = MetricsRegistry(lock=lock)
        first = registry.counter("cache_hits_total")
        second = registry.counter("cache_misses_total")
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                with registry.hold():
                    first.inc()
                    second.inc()

        def reader():
            for _ in range(2000):
                with registry.hold():
                    if first.value != second.value:
                        torn.append((first.value, second.value))

        writers = [threading.Thread(target=writer) for _ in range(4)]
        for thread in writers:
            thread.start()
        reader()
        stop.set()
        for thread in writers:
            thread.join()
        assert torn == []
