"""Trace span records, tree assembly, slow-query log, kernel profiler."""

import threading

import pytest

from repro.obs import KernelProfiler, SlowQueryLog, Trace, active_profiler, profile_kernels
from repro.obs.trace import mint_trace_id


def span_names(tree):
    """All span names in the tree, pre-order."""
    names = []

    def walk(node):
        names.append(node["name"])
        for child in node["children"]:
            walk(child)

    for root in tree["spans"]:
        walk(root)
    return names


class TestTraceIds:
    def test_minted_ids_are_32_hex_and_unique(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 32 and int(t, 16) >= 0 for t in ids)

    def test_supplied_id_is_kept_and_falsy_id_is_replaced(self):
        assert Trace("caller-id").trace_id == "caller-id"
        assert Trace("").trace_id != ""
        assert len(Trace(None).trace_id) == 32


class TestSpanRecords:
    def test_add_count_size_records(self):
        trace = Trace()
        trace.add("cache", 1.0, parent="evaluate", hit=False)
        trace.add("kernel", 0.5, parent="cache", kind="listing")
        assert trace.size() == 2
        assert trace.count("kernel") == 1
        records = trace.records()
        assert records[0]["meta"] == {"hit": False}
        # records() hands out copies: mutating them cannot corrupt the trace.
        records[0]["meta"]["hit"] = True
        assert trace.records()[0]["meta"] == {"hit": False}

    def test_span_contextmanager_times_and_extends_meta(self):
        trace = Trace()
        with trace.span("merge", parent="evaluate", shards=2) as meta:
            meta["matches"] = 7
        (record,) = trace.records()
        assert record["name"] == "merge"
        assert record["parent"] == "evaluate"
        assert record["duration_ms"] >= 0.0
        assert record["meta"] == {"shards": 2, "matches": 7}

    def test_span_records_even_when_the_block_raises(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("validate", parent="request"):
                raise RuntimeError("boom")
        assert trace.count("validate") == 1

    def test_concurrent_adds_are_all_retained(self):
        trace = Trace()
        threads = [
            threading.Thread(
                target=lambda i=i: [
                    trace.add("shard", 1.0, parent="fan_out", shard=i)
                    for _ in range(200)
                ]
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert trace.count("shard") == 800


class TestTreeAssembly:
    def test_children_nest_even_when_recorded_before_their_parent(self):
        trace = Trace()
        # Executor threads finish inner spans before the outer span closes.
        trace.add("kernel", 1.0, parent="cache")
        trace.add("cache", 2.0, parent="evaluate")
        trace.add("evaluate", 3.0, parent="service")
        trace.add("service", 4.0, parent="request")
        tree = trace.to_dict(total_ms=5.0)
        assert span_names(tree) == ["request", "service", "evaluate", "cache", "kernel"]
        (root,) = tree["spans"]
        assert root["duration_ms"] == 5.0
        assert tree["trace_id"] == trace.trace_id

    def test_unmatched_parents_become_roots(self):
        trace = Trace()
        trace.add("merge", 1.0, parent="evaluate")  # evaluate never recorded
        tree = trace.to_dict()
        assert span_names(tree) == ["merge"]

    def test_extract_follows_the_parent_chain_to_an_absent_root(self):
        trace = Trace()
        trace.add("kernel", 1.0, parent="cache")
        trace.add("cache", 2.0, parent="evaluate")
        trace.add("window_wait", 9.0, parent="service")
        extracted = trace.extract("evaluate")
        assert [record["name"] for record in extracted] == ["kernel", "cache"]

    def test_adopt_marks_shared_records(self):
        primary, twin = Trace(), Trace()
        primary.add("cache", 2.0, parent="evaluate", hit=True)
        twin.adopt(primary.extract("evaluate"), dedupe_shared=True)
        (record,) = twin.records()
        assert record["meta"] == {"hit": True, "dedupe_shared": True}
        # The primary's own records stay unmarked.
        assert primary.records()[0]["meta"] == {"hit": True}


class TestSlowQueryLog:
    def tree(self, total):
        return {"trace_id": f"t{total}", "spans": []}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_keeps_the_worst_k_and_dumps_worst_first(self):
        log = SlowQueryLog(capacity=3)
        for total in (5.0, 1.0, 9.0, 3.0, 7.0):
            log.record(total, self.tree(total))
        assert len(log) == 3
        rows = log.dump()
        assert [row["total_ms"] for row in rows] == [9.0, 7.0, 5.0]
        assert rows[0]["trace"] == self.tree(9.0)

    def test_fast_requests_do_not_displace_slow_ones(self):
        log = SlowQueryLog(capacity=2)
        log.record(10.0, self.tree(10.0))
        log.record(20.0, self.tree(20.0))
        for _ in range(50):
            log.record(1.0, self.tree(1.0))
        assert [row["total_ms"] for row in log.dump()] == [20.0, 10.0]

    def test_clear(self):
        log = SlowQueryLog(capacity=2)
        log.record(1.0, self.tree(1.0))
        log.clear()
        assert len(log) == 0
        assert log.dump() == []


class TestKernelProfiler:
    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            KernelProfiler(sample_rate=0.0)
        with pytest.raises(ValueError):
            KernelProfiler(sample_rate=1.5)

    def test_full_rate_always_samples_and_aggregates_per_stage(self):
        profiler = KernelProfiler()
        assert profiler.should_sample()
        profiler.observe("listing", 2.0)
        profiler.observe("listing", 4.0)
        profiler.observe("shard", 1.0)
        stats = profiler.stats()
        assert set(stats) == {"listing", "shard"}
        assert stats["listing"]["count"] == 2
        assert stats["listing"]["mean_ms"] == 3.0
        assert stats["listing"]["max_ms"] == 4.0

    def test_seeded_sampling_is_deterministic(self):
        a = KernelProfiler(sample_rate=0.5, seed=7)
        b = KernelProfiler(sample_rate=0.5, seed=7)
        decisions = [(a.should_sample(), b.should_sample()) for _ in range(100)]
        assert all(left == right for left, right in decisions)
        assert any(left for left, _ in decisions)
        assert not all(left for left, _ in decisions)

    def test_install_is_scoped_and_refuses_nesting(self):
        assert active_profiler() is None
        with profile_kernels() as profiler:
            assert active_profiler() is profiler
            with pytest.raises(ValueError):
                with profile_kernels():
                    pass  # pragma: no cover
        assert active_profiler() is None
