"""Process-pool shard workers: process ≡ thread ≡ serial equivalence pins.

``query_executor="process"`` must be a pure transport change: the per-shard
worker processes answer with array payloads that the parent rewraps, so
every answer — positions, documents, probabilities, relevances, ``top_k``
tie-breaks — must equal the thread-mode and single-engine answers
match-for-match.  Exercised for in-memory engines (pickled shard indexes)
and for archives loaded with ``mmap=True`` (workers re-map the shard
files), which is the production serving configuration.
"""

import random

import pytest

from repro.api import build_index, build_sharded_index, load_index
from repro.exceptions import ThresholdError, ValidationError
from repro.serving import AsyncSearchService
from tests.conftest import make_random_uncertain_string


@pytest.fixture(scope="module")
def chunk_setup():
    string = make_random_uncertain_string(70, 0.3, seed=21)
    serial = build_index(string, tau_min=0.1, kind="general")
    process_engine = build_sharded_index(
        string,
        shards=3,
        tau_min=0.1,
        kind="general",
        max_pattern_len=6,
        query_executor="process",
    )
    thread_engine = build_sharded_index(
        string, shards=3, tau_min=0.1, kind="general", max_pattern_len=6
    )
    yield string, serial, thread_engine, process_engine
    process_engine.close()
    thread_engine.close()


def _probes(string, seed, max_len=5):
    rng = random.Random(seed)
    backbone = string.most_likely_string()
    for _ in range(12):
        length = rng.randint(1, max_len)
        start = rng.randint(0, len(backbone) - length)
        yield backbone[start : start + length], round(rng.uniform(0.1, 0.9), 3)


def _assert_matches_close(actual, expected):
    """Same match set; values to 1e-9 (the sharded-vs-unsharded tolerance).

    Chunk shards accumulate their log-prefix sums from shard-local origins,
    so the last few ulps of a probability can differ from the unsharded
    engine's — the same carve-out ``tests/api/test_sharding.py`` applies.
    """
    assert [m.position for m in actual] == [m.position for m in expected]
    for a, e in zip(actual, expected):
        assert a.probability == pytest.approx(e.probability, rel=1e-9, abs=1e-12)


class TestProcessEquivalence:
    def test_chunk_process_equals_thread_exactly(self, chunk_setup):
        # Process mode is a pure transport change over the same shard
        # engines, so its answers must equal thread mode *byte for byte* —
        # the int64/float64 array payloads round-trip exactly.
        string, _, thread_engine, process_engine = chunk_setup
        for pattern, tau in _probes(string, seed=3):
            assert process_engine.query(pattern, tau=tau) == thread_engine.query(
                pattern, tau=tau
            )
            assert process_engine.top_k(pattern, 3, tau=tau) == thread_engine.top_k(
                pattern, 3, tau=tau
            )

    def test_chunk_process_matches_serial(self, chunk_setup):
        string, serial, _, process_engine = chunk_setup
        for pattern, tau in _probes(string, seed=13):
            _assert_matches_close(
                process_engine.query(pattern, tau=tau), serial.query(pattern, tau=tau)
            )

    def test_chunk_top_k_pin(self, chunk_setup):
        string, serial, thread_engine, process_engine = chunk_setup
        for pattern, tau in _probes(string, seed=4):
            threaded = thread_engine.top_k(pattern, 3, tau=tau)
            assert process_engine.top_k(pattern, 3, tau=tau) == threaded
            _assert_matches_close(threaded, serial.top_k(pattern, 3, tau=tau))

    def test_document_sharded_collection(self):
        rng = random.Random(5)
        documents = [
            make_random_uncertain_string(rng.randint(10, 25), 0.3, seed=seed)
            for seed in range(7)
        ]
        serial = build_index(documents, tau_min=0.1)
        thread_engine = build_sharded_index(documents, shards=3, tau_min=0.1)
        process_engine = build_sharded_index(
            documents, shards=3, tau_min=0.1, query_executor="process"
        )
        try:
            for document in documents[:4]:
                pattern = document.most_likely_string()[:2]
                for tau in (0.1, 0.3, 0.6):
                    answer = process_engine.query(pattern, tau=tau)
                    assert answer == thread_engine.query(pattern, tau=tau)
                    expected = serial.query(pattern, tau=tau)
                    assert [m.document for m in answer] == [
                        m.document for m in expected
                    ]
                    for a, e in zip(answer, expected):
                        assert a.relevance == pytest.approx(
                            e.relevance, rel=1e-9, abs=1e-12
                        )
                assert process_engine.top_k(pattern, 3) == thread_engine.top_k(
                    pattern, 3
                )
        finally:
            process_engine.close()
            thread_engine.close()

    def test_mmap_loaded_process_workers(self, tmp_path, chunk_setup):
        # The production serving shape: saved ensemble, mmap-loaded, process
        # workers mapping the shard archives themselves.  Answers must equal
        # the in-memory thread-mode engine byte-for-byte (same shards, same
        # arrays — persistence round-trips bit-exactly).
        string, _, thread_engine, _ = chunk_setup
        path = thread_engine.save(tmp_path / "ensemble")
        loaded = load_index(path, mmap=True, query_executor="process")
        try:
            assert loaded.query_executor == "process"
            for pattern, tau in _probes(string, seed=6):
                assert loaded.query(pattern, tau=tau) == thread_engine.query(
                    pattern, tau=tau
                )
                assert loaded.top_k(pattern, 2, tau=tau) == thread_engine.top_k(
                    pattern, 2, tau=tau
                )
        finally:
            loaded.close()

    def test_worker_errors_propagate(self, chunk_setup):
        _, _, _, process_engine = chunk_setup
        with pytest.raises(ThresholdError):
            process_engine.query("A", tau=0.001)  # below tau_min, raised in worker

    def test_close_is_idempotent_and_queries_recover(self, chunk_setup):
        string, _, thread_engine, process_engine = chunk_setup
        pattern = string.most_likely_string()[:3]
        baseline = thread_engine.query(pattern, tau=0.2)
        assert process_engine.query(pattern, tau=0.2) == baseline
        process_engine.close()
        process_engine.close()
        # Pools are recreated lazily after close.
        process_engine.cache.clear()
        assert process_engine.query(pattern, tau=0.2) == baseline

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValidationError):
            build_sharded_index("banana" * 5, shards=2, query_executor="fibers")

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValidationError):
            build_sharded_index(
                "banana" * 5, shards=2, max_workers=0, query_executor="process"
            )


class TestWorkerPoolSizing:
    """max_workers < shard count: one worker process serves several shards."""

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_fewer_workers_than_shards_in_memory(self, chunk_setup, max_workers):
        string, _, thread_engine, _ = chunk_setup
        from repro.api import build_sharded_index as build

        engine = build(
            string,
            shards=3,
            tau_min=0.1,
            kind="general",
            max_pattern_len=6,
            query_executor="process",
            max_workers=max_workers,
        )
        try:
            assert engine.describe()["sharding"]["max_workers"] == max_workers
            assert len(engine._ensure_process_pools()) == max_workers
            for pattern, tau in _probes(string, seed=17):
                assert engine.query(pattern, tau=tau) == thread_engine.query(
                    pattern, tau=tau
                )
                assert engine.top_k(pattern, 2, tau=tau) == thread_engine.top_k(
                    pattern, 2, tau=tau
                )
        finally:
            engine.close()

    def test_fewer_workers_than_shards_mmap_loaded(self, tmp_path, chunk_setup):
        from repro.api.sharding import ShardedEngine

        string, _, thread_engine, _ = chunk_setup
        path = thread_engine.save(tmp_path / "narrow")
        loaded = ShardedEngine.load(
            path, mmap=True, query_executor="process", max_workers=2
        )
        try:
            assert len(loaded._ensure_process_pools()) == 2
            for pattern, tau in _probes(string, seed=18):
                assert loaded.query(pattern, tau=tau) == thread_engine.query(
                    pattern, tau=tau
                )
        finally:
            loaded.close()

    def test_max_workers_clamped_to_shard_count(self, chunk_setup):
        _, _, _, process_engine = chunk_setup
        assert process_engine._fanout_workers() == process_engine.shard_count
        process_engine._max_workers = 99
        try:
            assert process_engine._fanout_workers() == process_engine.shard_count
        finally:
            process_engine._max_workers = None

    def test_thread_mode_describe_reports_clamped_workers(self):
        from repro.api import build_sharded_index as build

        engine = build("banana" * 8, shards=2, max_pattern_len=4, max_workers=64)
        try:
            # The documented clamp holds in thread mode too, and describe()
            # reports the effective width, not the requested one.
            assert engine.describe()["sharding"]["max_workers"] == 2
            assert engine._fanout_workers() == 2
        finally:
            engine.close()

    def test_describe_reports_executor(self, chunk_setup):
        _, _, thread_engine, process_engine = chunk_setup
        assert (
            thread_engine.describe()["sharding"]["query_executor"] == "thread"
        )
        assert (
            process_engine.describe()["sharding"]["query_executor"] == "process"
        )


class TestServiceOverProcessWorkers:
    """The full stack: async coalescing over multi-process mmap shards."""

    def test_async_service_over_mmap_process_engine(self, tmp_path, chunk_setup):
        import asyncio

        string, _, thread_engine, _ = chunk_setup
        path = thread_engine.save(tmp_path / "stack")
        engine = load_index(path, mmap=True, query_executor="process")
        probes = list(_probes(string, seed=8))

        async def storm():
            async with AsyncSearchService(engine, max_wait_ms=1.0) as service:
                return await asyncio.gather(
                    *(service.submit(p, tau=t) for p, t in probes)
                )

        try:
            results = asyncio.run(storm())
            for (pattern, tau), result in zip(probes, results):
                assert result.matches == thread_engine.query(pattern, tau=tau)
        finally:
            engine.close()


class _RecordingPool:
    """Stand-in for ProcessPoolExecutor that only records shutdowns."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs
        self.shutdowns = []

    def shutdown(self, wait=True):
        self.shutdowns.append(wait)


class _ExplodingPoolFactory:
    """Builds recording pools, then fails on the ``fail_on``-th creation."""

    def __init__(self, fail_on):
        self.created = []
        self._fail_on = fail_on

    def __call__(self, **kwargs):
        if len(self.created) + 1 == self._fail_on:
            raise OSError("worker process spawn failed")
        pool = _RecordingPool(**kwargs)
        self.created.append(pool)
        return pool


class TestLifecycleLeaks:
    """Worker processes must die with the engine, not with the interpreter."""

    def test_partial_construction_shuts_down_started_pools(self, monkeypatch):
        # If the second worker pool fails to start, the first — already
        # holding a live worker process — must be shut down before the
        # error propagates, or it leaks until interpreter exit.
        from repro.api import sharding

        string = make_random_uncertain_string(40, 0.3, seed=9)
        engine = build_sharded_index(
            string,
            shards=2,
            tau_min=0.1,
            kind="general",
            max_pattern_len=5,
            query_executor="process",
        )
        pattern = string.most_likely_string()[:2]
        factory = _ExplodingPoolFactory(fail_on=2)
        monkeypatch.setattr(sharding, "ProcessPoolExecutor", factory)
        try:
            with pytest.raises(OSError, match="spawn failed"):
                engine.query(pattern, tau=0.5)
            assert len(factory.created) == 1
            assert factory.created[0].shutdowns == [True]
            # The half-built pool list must not have been published.
            assert engine._process_pools is None
        finally:
            engine.close()

    def test_dropped_engine_finalizer_reaps_worker_processes(self):
        # An engine dropped without close() must still tear down its
        # persistent worker processes once the GC collects it.
        import gc
        import os
        import time

        string = make_random_uncertain_string(40, 0.3, seed=10)
        engine = build_sharded_index(
            string,
            shards=2,
            tau_min=0.1,
            kind="general",
            max_pattern_len=5,
            query_executor="process",
        )
        pattern = string.most_likely_string()[:2]
        engine.query(pattern, tau=0.5)  # spin up the worker processes
        pids = [pid for pool in engine._process_pools for pid in pool._processes]
        assert pids, "process mode should hold live worker processes"

        del engine
        gc.collect()

        deadline = time.monotonic() + 15.0
        alive = set(pids)
        while alive and time.monotonic() < deadline:
            for pid in list(alive):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    alive.discard(pid)
            if alive:
                time.sleep(0.05)
        assert not alive, f"worker processes leaked past GC: {sorted(alive)}"


class TestWorkerCrashRegression:
    """SIGKILLing a shard worker must end in recovery or WorkerError — never a hang."""

    def test_sigkill_mid_query_recovers_or_raises(self):
        import os
        import signal
        import threading

        from repro.exceptions import WorkerError

        string = make_random_uncertain_string(60, 0.3, seed=33)
        engine = build_sharded_index(
            string,
            shards=2,
            tau_min=0.1,
            kind="general",
            max_pattern_len=6,
            cache_size=0,
            query_executor="process",
            worker_retries=2,
        )
        try:
            pattern = string.most_likely_string()[:3]
            baseline = engine.query(pattern, tau=0.2)  # warms the worker pools
            pids = [
                pid
                for pool in engine._ensure_process_pools()
                for pid in getattr(pool, "_processes", {})
            ]
            assert pids, "process mode should hold live worker processes"

            outcome = {}

            def run():
                try:
                    outcome["result"] = engine.query(pattern, tau=0.2)
                except WorkerError as error:
                    outcome["error"] = error

            thread = threading.Thread(target=run)
            thread.start()
            os.kill(pids[0], signal.SIGKILL)  # mid-query, best effort
            thread.join(timeout=30.0)  # hard watchdog: a hang fails, not blocks, CI
            assert not thread.is_alive(), "query hung after a worker SIGKILL"
            if "result" in outcome:
                assert outcome["result"] == baseline
            else:
                assert isinstance(outcome["error"], WorkerError)

            # Whether the kill landed mid-flight or just after, the broken
            # pool must surface on the next fan-out and be rebuilt: the
            # engine stays usable and records the recovery.
            assert engine.query(pattern, tau=0.2) == baseline
            assert engine.resilience_stats()["pool_recoveries"] >= 1
        finally:
            engine.close()
