"""End-to-end observability: tear-free stats, trace propagation, /metrics.

Three families of regression tests ride here:

* snapshot consistency — ``stats()`` / ``metrics_samples()`` hammered from
  threads *during* a request storm must never produce a torn read (the
  completed counter and the latency histogram advance under one lock);
* chaos-style trace propagation — the span tree enumerates every shard
  touched (thread and process fan-out), survives worker crash recovery
  with retried spans marked, and round-trips a caller-supplied trace id
  HTTP header → response;
* exposition — ``/metrics`` parses as Prometheus text, the slow-query
  log surfaces through ``/stats`` and the load generator.
"""

import asyncio
import json
import re
import threading

import pytest

from repro.api import SearchRequest, build_index, build_sharded_index
from repro.api.cache import ResultCache
from repro.faults import SITE_WORKER_DISPATCH, FaultPlan, FaultSpec, inject_faults
from repro.obs import SlowQueryLog, Trace, profile_kernels
from repro.serving import AsyncSearchService, LoadProfile, SearchHttpApp, run_load
from repro.serving.http import TRACE_HEADER
from repro.serving.loadgen import format_trace_summary
from tests.conftest import make_random_uncertain_string

HARD_WATCHDOG_S = 30.0


@pytest.fixture(scope="module")
def corpus():
    return make_random_uncertain_string(60, 0.3, seed=31)


@pytest.fixture(scope="module")
def listing_engine():
    import random

    rng = random.Random(11)
    documents = [
        make_random_uncertain_string(rng.randint(12, 30), 0.3, seed=seed)
        for seed in range(6)
    ]
    return build_index(documents, tau_min=0.05)


@pytest.fixture()
def thread_sharded_engine(corpus):
    engine = build_sharded_index(
        corpus, shards=3, tau_min=0.1, kind="general", max_pattern_len=6,
        cache_size=0,
    )
    yield engine
    engine.close()


def _search_body(pattern, tau, **extra):
    return json.dumps({"pattern": pattern, "tau": tau, **extra}).encode("utf-8")


def _dispatch(engine, body, *, headers=None, app_kwargs=None, **service_kwargs):
    async def go():
        async with AsyncSearchService(engine, **service_kwargs) as service:
            app = SearchHttpApp(service, **(app_kwargs or {}))
            return await asyncio.wait_for(
                app.dispatch("POST", "/search", body, headers=headers),
                timeout=HARD_WATCHDOG_S,
            )

    return asyncio.run(go())


def _shard_spans(trace):
    return [record for record in trace.records() if record["name"] == "shard"]


def walk_tree(tree):
    """Flat ``{name: [nodes]}`` view of a ``Trace.to_dict`` span tree."""
    by_name = {}

    def walk(node):
        by_name.setdefault(node["name"], []).append(node)
        for child in node["children"]:
            walk(child)

    for root in tree["spans"]:
        walk(root)
    return by_name


# ---------------------------------------------------------------------------
# Satellite: stats()/metrics snapshot consistency under a storm
# ---------------------------------------------------------------------------
class TestSnapshotConsistency:
    def test_service_counters_and_histogram_never_tear_under_storm(
        self, listing_engine
    ):
        # The completed counter and the latency histogram advance together
        # under one registry hold; any collect() snapshot must agree.
        requests = [
            SearchRequest("A", tau=round(0.05 + 0.01 * (i % 40), 3))
            for i in range(160)
        ]
        violations = []
        stop = threading.Event()

        def hammer(service):
            while not stop.is_set():
                samples = {
                    sample.name: sample
                    for sample in service.metrics_samples()
                    if sample.name.startswith("service_")
                }
                completed = samples["service_completed_total"].value
                observed = samples["service_latency_ms"].count
                if completed != observed:
                    violations.append((completed, observed))
                stats = service.stats()
                if stats["completed"] < 0 or stats["submitted"] < stats["completed"]:
                    violations.append(stats)

        async def storm():
            async with AsyncSearchService(
                listing_engine, max_wait_ms=0.5, max_batch=16
            ) as service:
                thread = threading.Thread(target=hammer, args=(service,))
                thread.start()
                try:
                    results = await asyncio.gather(
                        *(service.submit(request) for request in requests)
                    )
                finally:
                    stop.set()
                    thread.join()
                return results, service.stats(), service.metrics_samples()

        results, stats, samples = asyncio.run(storm())
        assert violations == []
        assert len(results) == len(requests)
        assert stats["completed"] == len(requests)
        final = {s.name: s for s in samples if s.name.startswith("service_")}
        assert final["service_completed_total"].value == len(requests)
        assert final["service_latency_ms"].count == len(requests)

    def test_cache_stats_stay_consistent_under_storm(self):
        cache = ResultCache(capacity=8)
        operations = 400
        keys = [("p", i % 12, None) for i in range(operations)]
        violations = []
        previous = {"lookups": 0}
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                stats = cache.stats()
                lookups = stats["hits"] + stats["misses"]
                if not 0.0 <= stats["hit_rate"] <= 1.0:
                    violations.append(stats)
                if stats["size"] > stats["capacity"]:
                    violations.append(stats)
                if lookups < previous["lookups"]:  # counters are monotonic
                    violations.append(stats)
                previous["lookups"] = lookups

        def worker(chunk):
            for key in chunk:
                if cache.get(key) is None:
                    cache.put(key, (key,))

        chunks = [keys[i::4] for i in range(4)]
        threads = [threading.Thread(target=worker, args=(chunk,)) for chunk in chunks]
        observer = threading.Thread(target=reader)
        observer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        observer.join()

        assert violations == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == operations


# ---------------------------------------------------------------------------
# Satellite: chaos-style trace propagation
# ---------------------------------------------------------------------------
class TestTracePropagation:
    def test_thread_fan_out_enumerates_every_shard(self, corpus, thread_sharded_engine):
        pattern = corpus.most_likely_string()[:3]
        trace = Trace()
        request = SearchRequest(pattern, tau=0.2, trace=trace)
        baseline = thread_sharded_engine.search(SearchRequest(pattern, tau=0.2))
        traced = thread_sharded_engine.search(request)
        assert traced.matches == baseline.matches

        spans = _shard_spans(trace)
        assert {record["meta"]["shard"] for record in spans} == {0, 1, 2}
        assert all(record["meta"]["executor"] == "thread" for record in spans)
        assert all(record["meta"]["attempt"] == 0 for record in spans)
        names = {record["name"] for record in trace.records()}
        assert {"plan", "fan_out", "shard", "merge"} <= names

    def test_process_fan_out_carries_worker_timings_across_the_boundary(self, corpus):
        engine = build_sharded_index(
            corpus, shards=2, tau_min=0.1, kind="general", max_pattern_len=6,
            cache_size=0, query_executor="process",
        )
        try:
            pattern = corpus.most_likely_string()[:3]
            trace = Trace()
            engine.search(SearchRequest(pattern, tau=0.2, trace=trace)).matches
            spans = _shard_spans(trace)
            assert {record["meta"]["shard"] for record in spans} == {0, 1}
            assert all(record["meta"]["executor"] == "process" for record in spans)
            # The durations are the workers' own eval clocks, shipped back
            # over the process boundary as plain floats.
            assert all(record["duration_ms"] >= 0.0 for record in spans)
        finally:
            engine.close()

    def test_retried_spans_are_marked_after_worker_crash_recovery(self, corpus):
        engine = build_sharded_index(
            corpus, shards=2, tau_min=0.1, kind="general", max_pattern_len=6,
            cache_size=0, query_executor="process", worker_retries=2,
        )
        try:
            pattern = corpus.most_likely_string()[:3]
            # Warm the pool: workers spawn lazily on first evaluation, and
            # a crash hook against a cold pool has nothing to kill.
            baseline = engine.search(SearchRequest(pattern, tau=0.2)).matches

            plan = FaultPlan(
                specs=(FaultSpec(SITE_WORKER_DISPATCH, kind="crash", at=0, times=1),),
                seed=99,
            )
            trace = Trace()
            with inject_faults(plan) as injector:
                recovered = engine.search(
                    SearchRequest(pattern, tau=0.2, trace=trace)
                ).matches  # force evaluation while the plan is installed
            assert injector.stats()["fired"] == {SITE_WORKER_DISPATCH: 1}
            assert recovered == baseline
            assert engine.resilience_stats()["pool_recoveries"] >= 1

            spans = _shard_spans(trace)
            # The crash killed attempt 0; the spans that produced the answer
            # carry the retry ordinal, and every shard is still accounted for.
            assert {record["meta"]["shard"] for record in spans} == {0, 1}
            assert any(record["meta"]["attempt"] >= 1 for record in spans)
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# HTTP: header round-trip, span tree shape, timing budget, /metrics
# ---------------------------------------------------------------------------
class TestHttpTracing:
    def test_trace_id_round_trips_header_to_response(self, corpus, thread_sharded_engine):
        pattern = corpus.most_likely_string()[:3]
        response = _dispatch(
            thread_sharded_engine,
            _search_body(pattern, 0.2, debug="trace"),
            headers={TRACE_HEADER: "caller-trace-1"},
        )
        assert response.status == 200
        assert ("X-Repro-Trace-Id", "caller-trace-1") in response.headers
        assert response.payload["trace"]["trace_id"] == "caller-trace-1"

    def test_header_alone_traces_without_bloating_the_payload(
        self, corpus, thread_sharded_engine
    ):
        pattern = corpus.most_likely_string()[:3]
        response = _dispatch(
            thread_sharded_engine,
            _search_body(pattern, 0.2),
            headers={TRACE_HEADER: "quiet-trace"},
        )
        assert response.status == 200
        assert ("X-Repro-Trace-Id", "quiet-trace") in response.headers
        assert "trace" not in response.payload

    def test_malformed_trace_header_is_a_validation_error(
        self, corpus, thread_sharded_engine
    ):
        response = _dispatch(
            thread_sharded_engine,
            _search_body("A", 0.2),
            headers={TRACE_HEADER: "bad id!"},
        )
        assert response.status == 400
        assert response.payload["error"]["type"] == "ValidationError"

    def test_span_tree_covers_dispatch_to_merge_and_sums_to_total(
        self, corpus, thread_sharded_engine
    ):
        pattern = corpus.most_likely_string()[:3]
        response = _dispatch(
            thread_sharded_engine, _search_body(pattern, 0.2, debug="trace")
        )
        assert response.status == 200
        tree = response.payload["trace"]
        by_name = walk_tree(tree)

        # Every serving stage appears, rooted at the synthetic request span.
        for stage in ("request", "validate", "service", "window_wait",
                      "evaluate", "fan_out", "shard", "merge", "serialize"):
            assert stage in by_name, stage
        assert {node["meta"]["shard"] for node in by_name["shard"]} == {0, 1, 2}

        # Stage timings account for the reported end-to-end latency: the
        # top-level stages sum to the root duration up to dispatch overhead.
        (root,) = by_name["request"]
        staged = sum(child["duration_ms"] for child in root["children"])
        assert staged <= root["duration_ms"] * 1.05 + 0.5
        assert root["duration_ms"] - staged < 100.0  # only dispatch overhead
        # And within the service span, the window wait plus evaluation fit.
        (service_node,) = by_name["service"]
        inner = sum(child["duration_ms"] for child in service_node["children"])
        assert inner <= service_node["duration_ms"] * 1.05 + 0.5

    def test_metrics_endpoint_renders_parseable_prometheus_text(
        self, corpus, thread_sharded_engine
    ):
        sample_line = re.compile(r"^([a-z0-9_]+)(\{[^}]*\})? (\+Inf|[-+0-9.e]+)$")

        async def go():
            async with AsyncSearchService(thread_sharded_engine) as service:
                app = SearchHttpApp(service)
                search = await app.dispatch(
                    "POST", "/search", _search_body(corpus.most_likely_string()[:3], 0.2)
                )
                assert search.status == 200
                return await app.dispatch("GET", "/metrics")

        response = asyncio.run(go())
        assert response.status == 200
        assert response.content_type.startswith("text/plain; version=0.0.4")
        text = response.body().decode("utf-8")
        helped = set()
        for line in text.splitlines():
            if line.startswith(("# HELP ", "# TYPE ")):
                helped.add(line.split()[2])
                continue
            assert sample_line.match(line), line
        for name in ("service_submitted_total", "service_latency_ms",
                     "sharding_pool_recoveries_total"):
            assert name in helped

    def test_slow_query_log_surfaces_in_stats(self, corpus, thread_sharded_engine):
        slow_log = SlowQueryLog(capacity=2)

        async def go():
            async with AsyncSearchService(thread_sharded_engine) as service:
                app = SearchHttpApp(service, slow_log=slow_log)
                for tau in (0.2, 0.3, 0.4):
                    response = await app.dispatch(
                        "POST", "/search",
                        _search_body(corpus.most_likely_string()[:3], tau),
                    )
                    assert response.status == 200
                return await app.dispatch("GET", "/stats")

        stats = asyncio.run(go())
        assert stats.status == 200
        rows = stats.payload["slow_queries"]
        assert len(rows) == 2  # worst-K, not most recent
        totals = [row["total_ms"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        assert all("trace_id" in row["trace"] for row in rows)


# ---------------------------------------------------------------------------
# Satellite: load generator shares the obs quantiles and slow-query log
# ---------------------------------------------------------------------------
class TestLoadgenObservability:
    def test_run_load_fills_the_slow_log_and_summaries_render(self, listing_engine):
        profile = LoadProfile(
            patterns=("A", "C"), taus=(0.1, 0.4), requests=24, concurrency=4,
            debug_trace=True,
        )
        slow_log = SlowQueryLog(capacity=3)

        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.5) as service:
                return await run_load(
                    SearchHttpApp(service).dispatch, profile, slow_log=slow_log
                )

        report = asyncio.run(go())
        assert report.ok == 24
        assert len(slow_log) == 3
        rows = slow_log.dump()
        assert [row["total_ms"] for row in rows] == sorted(
            (row["total_ms"] for row in rows), reverse=True
        )
        summary = format_trace_summary(rows[0])
        assert "trace=" in summary
        assert "request=" in summary and "service=" in summary

    def test_debug_trace_rides_every_plan_row(self):
        profile = LoadProfile(
            patterns=("A",), taus=(0.3,), requests=3, debug_trace=True
        )
        for _, body, _ in profile.plan():
            assert json.loads(body)["debug"] == "trace"


# ---------------------------------------------------------------------------
# Kernel profiler hooks fire on the engine's evaluation path
# ---------------------------------------------------------------------------
class TestKernelProfilerIntegration:
    def test_profiler_observes_kernel_stages_during_search(self, corpus):
        # cache_size=0 so the kernel actually runs instead of answering
        # from the result cache (which would starve the profiler hook).
        engine = build_index(corpus, tau_min=0.1, kind="general", cache_size=0)
        with profile_kernels() as profiler:
            engine.search(
                SearchRequest(corpus.most_likely_string()[:3], tau=0.2)
            ).matches
        stats = profiler.stats()
        assert stats, "no kernel stage was profiled"
        assert all(entry["count"] >= 1 for entry in stats.values())
        assert all(entry["max_ms"] >= entry["p50_ms"] >= 0.0 for entry in stats.values())
