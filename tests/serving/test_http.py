"""HTTP tier: routes, the exception→status contract, pagination, sockets.

Most tests drive :meth:`SearchHttpApp.dispatch` in-process — the same
transport the load generator and the CI perf smoke use — so the whole
HTTP surface is covered without binding a port; one class round-trips
through a real :class:`SearchHttpServer` socket to pin the transport.
"""

import asyncio
import json
import random
import threading

import pytest

from repro.api import SearchRequest, build_index
from repro.exceptions import (
    AlphabetError,
    DeadlineExceededError,
    DrainTimeoutError,
    NoHealthyReplicaError,
    PatternTooLongError,
    QueryError,
    ServiceOverloadedError,
    ServiceStoppedError,
    ThresholdError,
    ValidationError,
    WorkerError,
)
from repro.serving import (
    AsyncSearchService,
    ReplicaSet,
    SearchHttpApp,
    SearchHttpServer,
    status_for_exception,
)
from repro.serving.http import HttpResponse, match_to_json
from tests.conftest import make_random_uncertain_string


@pytest.fixture(scope="module")
def listing_engine():
    rng = random.Random(11)
    documents = [
        make_random_uncertain_string(rng.randint(12, 30), 0.3, seed=seed)
        for seed in range(6)
    ]
    return build_index(documents, tau_min=0.05)


def _with_app(engine, handler, **service_kwargs):
    """Run ``handler(app)`` inside a started service; returns its result."""

    async def go():
        async with AsyncSearchService(engine, **service_kwargs) as service:
            return await handler(SearchHttpApp(service))

    return asyncio.run(go())


class TestStatusMapping:
    @pytest.mark.parametrize(
        ("error", "status"),
        [
            (ServiceOverloadedError("full"), 429),
            (ServiceStoppedError("stopped"), 503),
            (NoHealthyReplicaError("none"), 503),
            (DrainTimeoutError("drain"), 503),
            (DeadlineExceededError("late"), 504),
            (PatternTooLongError("long"), 400),
            (ThresholdError("tau"), 400),
            (AlphabetError("sigma"), 400),
            (ValidationError("bad"), 400),
            (QueryError("query"), 400),
            (WorkerError("worker"), 500),  # ReproError without its own row
            (RuntimeError("boom"), 500),  # outside the taxonomy entirely
        ],
    )
    def test_fixed_mapping(self, error, status):
        assert status_for_exception(error) == status

    def test_subclasses_precede_bases(self):
        # PatternTooLongError is a QueryError and ThresholdError is a
        # ValidationError: both must hit their own (or their parent 400)
        # row before the generic ReproError→500 row.
        assert status_for_exception(PatternTooLongError("x")) == 400
        assert status_for_exception(ThresholdError("x")) == 400


class TestRoutes:
    def test_healthz_while_running(self, listing_engine):
        async def handler(app):
            return await app.dispatch("GET", "/healthz")

        response = _with_app(listing_engine, handler)
        assert response.status == 200
        assert response.payload == {"status": "ok", "running": True}

    def test_healthz_after_stop_is_503(self, listing_engine):
        async def go():
            service = AsyncSearchService(listing_engine)
            await service.start()
            await service.stop()
            return await SearchHttpApp(service).dispatch("GET", "/healthz")

        response = asyncio.run(go())
        assert response.status == 503
        assert response.payload["status"] == "stopped"

    def test_search_get_matches_engine(self, listing_engine):
        request = SearchRequest("A", tau=0.1)

        async def handler(app):
            return await app.dispatch("GET", "/search?pattern=A&tau=0.1")

        response = _with_app(listing_engine, handler)
        expected = listing_engine.search(request).matches
        assert response.status == 200
        assert response.payload["count"] == len(expected)
        assert response.payload["matches"] == [match_to_json(m) for m in expected]
        assert response.payload["pattern"] == "A"
        assert response.payload["tau"] == 0.1

    def test_search_post_equals_get(self, listing_engine):
        async def handler(app):
            get = await app.dispatch("GET", "/search?pattern=A&tau=0.2&top_k=3")
            post = await app.dispatch(
                "POST",
                "/search",
                json.dumps({"pattern": "A", "tau": 0.2, "top_k": 3}).encode(),
            )
            return get, post

        get, post = _with_app(listing_engine, handler)
        assert get.status == post.status == 200
        assert get.payload == post.payload

    def test_pagination_over_the_wire(self, listing_engine):
        request = SearchRequest("A", tau=0.1)
        expected = listing_engine.search(request).matches

        async def handler(app):
            return await app.dispatch("GET", "/search?pattern=A&tau=0.1&offset=1&limit=2")

        response = _with_app(listing_engine, handler)
        assert response.payload["count"] == len(expected)  # count is pre-paging
        assert response.payload["offset"] == 1
        assert response.payload["limit"] == 2
        assert response.payload["matches"] == [
            match_to_json(m) for m in expected[1:3]
        ]

    def test_stats_merges_service_and_engine(self, listing_engine):
        replicas = ReplicaSet([listing_engine])

        async def handler(app):
            await app.dispatch("GET", "/search?pattern=A&tau=0.1")
            return await app.dispatch("GET", "/stats")

        try:
            response = _with_app(replicas, handler)
        finally:
            replicas.close(close_engines=False)
        assert response.status == 200
        assert response.payload["service"]["completed"] == 1
        assert response.payload["engine"]["replica_count"] == 1

    def test_unknown_path_is_404(self, listing_engine):
        async def handler(app):
            return await app.dispatch("GET", "/nope")

        response = _with_app(listing_engine, handler)
        assert response.status == 404
        assert response.payload["error"]["status"] == 404

    def test_wrong_method_is_405_with_allow(self, listing_engine):
        async def handler(app):
            return (
                await app.dispatch("DELETE", "/search"),
                await app.dispatch("POST", "/healthz"),
            )

        search, healthz = _with_app(listing_engine, handler)
        assert search.status == 405
        assert dict(search.headers)["Allow"] == "GET, POST"
        assert healthz.status == 405


class TestRequestValidation:
    @pytest.mark.parametrize(
        "target",
        [
            "/search",  # pattern missing
            "/search?pattern=A&tau=nope",  # tau not a number
            "/search?pattern=A&tau=2.0",  # tau out of range
            "/search?pattern=A&top_k=0",  # top_k not positive
            "/search?pattern=A&offset=-1",  # negative offset
            "/search?pattern=A&limit=-1",  # negative limit
            "/search?pattern=A&taau=0.3",  # unknown parameter
            "/search?pattern=A&tau=0.1&tau=0.2",  # repeated parameter
        ],
    )
    def test_bad_get_parameters_are_400(self, listing_engine, target):
        async def handler(app):
            return await app.dispatch("GET", target)

        response = _with_app(listing_engine, handler)
        assert response.status == 400
        assert response.payload["error"]["status"] == 400

    @pytest.mark.parametrize("body", [None, b"", b"not json", b"[1, 2]"])
    def test_bad_post_bodies_are_400(self, listing_engine, body):
        async def handler(app):
            return await app.dispatch("POST", "/search", body)

        response = _with_app(listing_engine, handler)
        assert response.status == 400

    def test_threshold_error_end_to_end(self, listing_engine):
        async def handler(app):
            return await app.dispatch("GET", "/search?pattern=A&tau=0.001")

        response = _with_app(listing_engine, handler)
        assert response.status == 400
        assert response.payload["error"]["type"] == "ThresholdError"

    def test_stopped_service_maps_to_503(self, listing_engine):
        async def go():
            service = AsyncSearchService(listing_engine)
            await service.start()
            await service.stop()
            return await SearchHttpApp(service).dispatch(
                "GET", "/search?pattern=A&tau=0.1"
            )

        response = asyncio.run(go())
        assert response.status == 503
        assert response.payload["error"]["type"] == "ServiceStoppedError"

    def test_overload_maps_to_429(self, listing_engine):
        gate = threading.Event()

        class _Gated:
            def __getattr__(self, name):
                return getattr(listing_engine, name)

            def search_many(self, requests):
                assert gate.wait(timeout=10.0)
                return listing_engine.search_many(requests)

        async def go():
            async with AsyncSearchService(
                _Gated(), max_wait_ms=0.0, max_batch=1, max_pending=1
            ) as service:
                app = SearchHttpApp(service)
                first = asyncio.ensure_future(
                    app.dispatch("GET", "/search?pattern=A&tau=0.1")
                )
                # Let the first request enter its window and block in the
                # gated engine, holding the single admission slot.
                for _ in range(50):
                    await asyncio.sleep(0.001)
                    if service.stats()["in_flight"] == 1:
                        break
                second = await app.dispatch("GET", "/search?pattern=A&tau=0.1")
                gate.set()
                return await first, second

        first, second = asyncio.run(go())
        assert first.status == 200
        assert second.status == 429
        assert second.payload["error"]["type"] == "ServiceOverloadedError"


class TestHttpResponse:
    def test_encode_shape(self):
        response = HttpResponse(200, {"a": 1}, headers=(("X-Extra", "y"),))
        raw = response.encode()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert b"X-Extra: y" in head
        assert json.loads(body) == {"a": 1}
        assert f"Content-Length: {len(body)}".encode() in head
        assert response.ok

    def test_unknown_status_reason(self):
        assert HttpResponse(418, {}).reason == "Unknown"


class TestDeadlinesOverHttp:
    def test_expired_timeout_ms_answers_504(self, listing_engine):
        async def handler(app):
            body = json.dumps(
                {"pattern": "A", "tau": 0.1, "timeout_ms": 0.001}
            ).encode("utf-8")
            return await app.dispatch("POST", "/search", body)

        # A 50ms batch window dwarfs the microscopic budget, so the
        # watchdog deterministically fires before dispatch.
        response = _with_app(listing_engine, handler, max_wait_ms=50.0)
        assert response.status == 504
        assert response.payload["error"]["type"] == "DeadlineExceededError"

    def test_invalid_timeout_ms_rejected(self, listing_engine):
        async def handler(app):
            negative = await app.dispatch(
                "POST",
                "/search",
                json.dumps({"pattern": "A", "tau": 0.1, "timeout_ms": -5}).encode(),
            )
            not_a_number = await app.dispatch(
                "POST",
                "/search",
                json.dumps(
                    {"pattern": "A", "tau": 0.1, "timeout_ms": "soon"}
                ).encode(),
            )
            return negative, not_a_number

        negative, not_a_number = _with_app(listing_engine, handler)
        assert negative.status == 400
        assert not_a_number.status == 400

    def test_generous_timeout_ms_answers_normally(self, listing_engine):
        async def handler(app):
            plain = await app.dispatch(
                "POST",
                "/search",
                json.dumps({"pattern": "A", "tau": 0.1}).encode(),
            )
            bounded = await app.dispatch(
                "POST",
                "/search",
                json.dumps(
                    {"pattern": "A", "tau": 0.1, "timeout_ms": 30_000.0}
                ).encode(),
            )
            return plain, bounded

        plain, bounded = _with_app(listing_engine, handler)
        assert plain.status == bounded.status == 200
        assert bounded.payload["matches"] == plain.payload["matches"]
        # Complete answers never carry the degradation keys.
        assert "partial" not in bounded.payload
        assert "failed_shards" not in bounded.payload


class TestSocketServer:
    def test_round_trip_and_keep_alive(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.5) as service:
                async with SearchHttpServer(SearchHttpApp(service)) as server:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    responses = []
                    try:
                        for _ in range(2):  # two requests, one connection
                            writer.write(
                                b"GET /search?pattern=A&tau=0.1 HTTP/1.1\r\n"
                                b"Host: t\r\n\r\n"
                            )
                            await writer.drain()
                            status_line = await reader.readline()
                            length = 0
                            while True:
                                header = await reader.readline()
                                if header in (b"\r\n", b"\n"):
                                    break
                                name, _, value = header.decode().partition(":")
                                if name.strip().lower() == "content-length":
                                    length = int(value.strip())
                            body = await reader.readexactly(length)
                            responses.append((status_line, json.loads(body)))
                    finally:
                        writer.close()
                        await writer.wait_closed()
                    return responses

        responses = asyncio.run(go())
        expected = listing_engine.search(SearchRequest("A", tau=0.1)).matches
        for status_line, payload in responses:
            assert b"200" in status_line
            assert payload["count"] == len(expected)

    def test_server_accepts_service_directly_and_connection_close(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.5) as service:
                async with SearchHttpServer(service) as server:
                    assert server.app.service is service
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                    )
                    await writer.drain()
                    raw = await reader.read()  # server closes after answering
                    writer.close()
                    await writer.wait_closed()
                    return raw

        raw = asyncio.run(go())
        assert raw.startswith(b"HTTP/1.1 200 OK")

    def test_garbage_request_line_closes_connection(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine) as service:
                async with SearchHttpServer(service) as server:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    writer.write(b"garbage\r\n\r\n")
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    return raw

        assert asyncio.run(go()) == b""

    def test_idle_timeout_closes_silent_connection_cleanly(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine) as service:
                async with SearchHttpServer(service, idle_timeout_s=0.2) as server:
                    assert server.idle_timeout_s == 0.2
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    # Send nothing: the server must close the connection
                    # itself once the idle window lapses.
                    raw = await asyncio.wait_for(reader.read(), timeout=10.0)
                    writer.close()
                    await writer.wait_closed()
                    return raw

        assert asyncio.run(go()) == b""  # clean close: no response bytes

    def test_idle_timeout_still_serves_prompt_requests(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.5) as service:
                async with SearchHttpServer(service, idle_timeout_s=5.0) as server:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    return raw

        assert asyncio.run(go()).startswith(b"HTTP/1.1 200 OK")

    def test_invalid_idle_timeout_rejected(self, listing_engine):
        service = AsyncSearchService(listing_engine)
        with pytest.raises(ValidationError):
            SearchHttpServer(service, idle_timeout_s=0.0)

    def test_cold_process_pool_does_not_trap_open_connections(self):
        # Regression: the first query against a process-mode engine forks
        # the worker pool lazily — mid-connection, when driven over a
        # socket.  Forked workers inherit a duplicate of the accepted
        # connection's fd; unless they close it, the TCP session stays
        # established after the server's own close and a client reading to
        # EOF hangs forever.  The worker initializer must drop inherited
        # sockets, so this read-to-EOF completes.
        from repro.api import build_sharded_index

        engine = build_sharded_index(
            make_random_uncertain_string(40, 0.3, seed=23),
            shards=2,
            tau_min=0.1,
            kind="general",
            max_pattern_len=4,
            query_executor="process",
            cache_size=0,
        )
        try:

            async def go():
                async with AsyncSearchService(engine, max_wait_ms=0.5) as service:
                    async with SearchHttpServer(service) as server:
                        reader, writer = await asyncio.open_connection(
                            server.host, server.port
                        )
                        writer.write(
                            b"GET /search?pattern=A&tau=0.2 HTTP/1.1\r\n"
                            b"Host: t\r\nConnection: close\r\n\r\n"
                        )
                        await writer.drain()
                        # Pre-fix this never returned: the fork kept the
                        # connection open, so EOF never arrived.
                        raw = await asyncio.wait_for(reader.read(), timeout=30.0)
                        writer.close()
                        await writer.wait_closed()
                        return raw

            raw = asyncio.run(go())
            assert raw.startswith(b"HTTP/1.1 200 OK")
        finally:
            engine.close()
