"""AsyncSearchService: coalescing correctness, overload, stats, lifecycle.

The async tests drive the event loop through ``asyncio.run`` directly, so
they run with or without the ``pytest-asyncio`` plugin installed.
"""

import asyncio
import random
import threading

import pytest

from repro.api import SearchRequest, build_index
from repro.exceptions import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ThresholdError,
    ValidationError,
)
from repro.serving import AsyncSearchService
from tests.conftest import make_random_uncertain_string


@pytest.fixture(scope="module")
def listing_engine():
    rng = random.Random(11)
    documents = [
        make_random_uncertain_string(rng.randint(12, 30), 0.3, seed=seed)
        for seed in range(6)
    ]
    return build_index(documents, tau_min=0.05)


@pytest.fixture(scope="module")
def substring_engine():
    return build_index(
        make_random_uncertain_string(60, 0.3, seed=5), tau_min=0.1, kind="general"
    )


def _random_requests(engine, count, seed):
    rng = random.Random(seed)
    backbone = None
    if engine.is_listing:
        patterns = []
        for document in engine.index._collection:
            text = document.most_likely_string()
            patterns.extend(text[i : i + 2] for i in range(0, len(text) - 2, 5))
    else:
        backbone = engine.index._string.most_likely_string()
        patterns = [backbone[i : i + 3] for i in range(0, len(backbone) - 3, 4)]
    requests = []
    for _ in range(count):
        pattern = rng.choice(patterns)
        tau = round(rng.uniform(engine.tau_min, 0.9), 3)
        top_k = rng.choice([None, None, None, rng.randint(1, 4)])
        requests.append(SearchRequest(pattern, tau=tau, top_k=top_k))
    return requests


class TestCoalescedEquivalence:
    """Concurrent submit storms answer exactly like sequential Engine.search."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_storm_matches_sequential(self, listing_engine, seed):
        requests = _random_requests(listing_engine, 120, seed)

        async def storm():
            async with AsyncSearchService(
                listing_engine, max_wait_ms=1.0, max_batch=32
            ) as service:
                results = await asyncio.gather(
                    *(service.submit(request) for request in requests)
                )
                return results, service.stats()

        results, stats = asyncio.run(storm())
        for request, result in zip(requests, results):
            assert result.matches == listing_engine.search(request).matches
        assert stats["completed"] == len(requests)
        # Coalescing happened: far fewer batches than requests.
        assert stats["batches"] < len(requests)

    def test_storm_on_substring_engine(self, substring_engine):
        requests = _random_requests(substring_engine, 80, seed=9)

        async def storm():
            async with AsyncSearchService(substring_engine, max_wait_ms=0.5) as service:
                return await asyncio.gather(
                    *(service.submit(request) for request in requests)
                )

        results = asyncio.run(storm())
        for request, result in zip(requests, results):
            assert result.matches == substring_engine.search(request).matches

    def test_coalesced_refinement_equivalence(self, listing_engine):
        # Same pattern at many thresholds, from "different users": the
        # window funnels them through one search_many, where the listing
        # engine derives tighter answers by refinement — answers must equal
        # direct sequential queries bit-for-bit.
        document = listing_engine.index._collection[0]
        pattern = document.most_likely_string()[:2]
        taus = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8]
        requests = [SearchRequest(pattern, tau=tau) for tau in taus for _ in range(5)]

        async def storm():
            async with AsyncSearchService(
                listing_engine, max_wait_ms=5.0, max_batch=len(requests)
            ) as service:
                results = await asyncio.gather(
                    *(service.submit(request) for request in requests)
                )
                return results, service.stats()

        results, stats = asyncio.run(storm())
        for request, result in zip(requests, results):
            assert result.matches == listing_engine.search(request).matches
        # 30 submissions, 6 distinct requests: the rest were deduplicated.
        assert stats["deduplicated"] == len(requests) - len(taus)

    def test_bare_pattern_submit(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine) as service:
                return await service.submit("A", tau=0.1)

        result = asyncio.run(go())
        assert result.matches == listing_engine.search("A", tau=0.1).matches


class TestAdmissionControl:
    def test_overload_rejects_beyond_max_pending(self, listing_engine):
        async def go():
            service = AsyncSearchService(
                listing_engine, max_wait_ms=50.0, max_batch=64, max_pending=4
            )
            # Not started: submissions queue up without being drained, so
            # the admission bound is hit deterministically.
            accepted = []
            rejected = 0
            submissions = []
            for _ in range(10):
                submissions.append(
                    asyncio.ensure_future(service.submit("A", tau=0.1))
                )
                await asyncio.sleep(0)  # let the submit coroutine enqueue
            await service.start()
            for submission in submissions:
                try:
                    accepted.append(await submission)
                except ServiceOverloadedError:
                    rejected += 1
            stats = service.stats()
            await service.stop()
            return accepted, rejected, stats

        accepted, rejected, stats = asyncio.run(go())
        assert rejected == 6  # everything past max_pending=4 failed fast
        assert len(accepted) == 4
        assert stats["rejected"] == 6
        expected = listing_engine.search("A", tau=0.1).matches
        for result in accepted:
            assert result.matches == expected

    def test_validation_of_config(self, listing_engine):
        with pytest.raises(ValidationError):
            AsyncSearchService(listing_engine, max_wait_ms=-1.0)
        with pytest.raises(ValidationError):
            AsyncSearchService(listing_engine, max_batch=0)
        with pytest.raises(ValidationError):
            AsyncSearchService(listing_engine, max_pending=0)


class TestFailuresAndLifecycle:
    def test_evaluation_errors_propagate_to_the_caller(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine) as service:
                good = service.submit("A", tau=0.5)
                bad = service.submit("A", tau=0.001)  # below tau_min
                results = await asyncio.gather(good, bad, return_exceptions=True)
                return results, service.stats()

        (good, bad), stats = asyncio.run(go())
        assert good.matches == listing_engine.search("A", tau=0.5).matches
        assert isinstance(bad, ThresholdError)
        assert stats["failed"] >= 1

    def test_submit_after_stop_raises(self, listing_engine):
        async def go():
            service = AsyncSearchService(listing_engine)
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError):
                await service.submit("A", tau=0.1)

        asyncio.run(go())

    def test_stop_drains_queued_requests(self, listing_engine):
        async def go():
            service = AsyncSearchService(listing_engine, max_wait_ms=100.0)
            submission = asyncio.ensure_future(service.submit("A", tau=0.1))
            await asyncio.sleep(0)
            # Stop while the window is still open: the admitted request
            # must be answered, not dropped.
            await service.stop()
            return await submission

        result = asyncio.run(go())
        assert result.matches == listing_engine.search("A", tau=0.1).matches

    def test_replace_engine_serves_new_answers(self, listing_engine, substring_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.0) as service:
                before = await service.submit("A", tau=0.1)
                previous = service.replace_engine(substring_engine)
                after = await service.submit("A", tau=0.1)
                return before, previous, after

        before, previous, after = asyncio.run(go())
        assert previous is listing_engine
        assert before.matches == listing_engine.search("A", tau=0.1).matches
        assert after.matches == substring_engine.search("A", tau=0.1).matches

    def test_stats_shape(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.0) as service:
                await service.submit("A", tau=0.1)
                return service.stats()

        stats = asyncio.run(go())
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["queue_depth"] == 0
        assert stats["max_queue_depth"] >= 1
        assert stats["latency"]["mean_ms"] > 0.0
        assert stats["latency"]["max_ms"] >= stats["latency"]["mean_ms"]
        assert stats["config"]["max_wait_ms"] == 0.0


class TestDeadlineWatchdog:
    def test_expired_budget_raises_deadline_exceeded(self, listing_engine):
        # A microscopic budget against a 50ms batch window: the watchdog
        # must fire while the request is still queued in the window.
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=50.0) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.submit(
                        SearchRequest("A", tau=0.1, timeout_ms=0.001)
                    )
                return service.stats()

        stats = asyncio.run(go())
        assert stats["deadline_exceeded"] >= 1

    def test_generous_budget_answers_like_unbounded(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.0) as service:
                bounded = await service.submit(
                    SearchRequest("A", tau=0.1, timeout_ms=30_000.0)
                )
                unbounded = await service.submit(SearchRequest("A", tau=0.1))
                return bounded, unbounded, service.stats()

        bounded, unbounded, stats = asyncio.run(go())
        assert bounded.matches == unbounded.matches
        assert stats["deadline_exceeded"] == 0
        assert stats["partial_answers"] == 0

    def test_deduped_bucket_with_unbounded_member_stays_unbounded(
        self, listing_engine
    ):
        # Coalescing a bounded and an unbounded copy of the same request
        # must not impose the bounded member's budget on the shared
        # evaluation — both callers get the full answer.
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=20.0) as service:
                results = await asyncio.gather(
                    service.submit(SearchRequest("A", tau=0.1, timeout_ms=60_000.0)),
                    service.submit(SearchRequest("A", tau=0.1)),
                )
                return results, service.stats()

        (bounded, unbounded), stats = asyncio.run(go())
        assert bounded.matches == unbounded.matches
        assert stats["deduplicated"] >= 1
        assert stats["deadline_exceeded"] == 0


class _GatedEngine:
    """Blocks ``search_many`` on a threading gate (it runs on the executor
    thread, never the event loop), so tests can hold a window in flight."""

    def __init__(self, engine):
        self._engine = engine
        self.gate = threading.Event()

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def search_many(self, requests):
        assert self.gate.wait(timeout=10.0), "test gate never released"
        return self._engine.search_many(requests)


async def _wait_for(predicate, timeout=5.0):
    for _ in range(int(timeout / 0.001)):
        if predicate():
            return
        await asyncio.sleep(0.001)
    raise AssertionError("condition never became true")


class TestInFlightAdmission:
    """Regression: admission must count in-flight windows, not just the queue.

    Pre-fix, ``submit`` gated on ``len(self._pending)`` alone; requests
    popped into a dispatched window left the queue while their futures were
    still unresolved, so a burst could admit up to ``max_pending +
    max_batch`` requests.  Post-fix the bound covers queued plus in-flight.
    """

    def test_in_flight_window_still_occupies_admission_capacity(
        self, listing_engine
    ):
        gated = _GatedEngine(listing_engine)

        async def go():
            async with AsyncSearchService(
                gated, max_wait_ms=0.0, max_batch=2, max_pending=2
            ) as service:
                first = asyncio.ensure_future(service.submit("A", tau=0.1))
                second = asyncio.ensure_future(service.submit("A", tau=0.2))
                # The window closes around both requests and blocks inside
                # the gated engine: queue empty, two requests in flight.
                await _wait_for(lambda: service.stats()["in_flight"] == 2)
                assert service.stats()["queue_depth"] == 0
                # Pre-fix this was admitted (queue length 0 < max_pending);
                # the in-flight requests must keep the capacity occupied.
                with pytest.raises(ServiceOverloadedError):
                    await service.submit("A", tau=0.3)
                gated.gate.set()
                results = await asyncio.gather(first, second)
                # Capacity frees once the window resolves.
                released = await service.submit("A", tau=0.3)
                return results, released, service.stats()

        (first, second), released, stats = asyncio.run(go())
        assert first.matches == listing_engine.search("A", tau=0.1).matches
        assert second.matches == listing_engine.search("A", tau=0.2).matches
        assert released.matches == listing_engine.search("A", tau=0.3).matches
        assert stats["rejected"] == 1
        assert stats["in_flight"] == 0
        assert stats["submitted"] == stats["completed"] == 3

    def test_storm_never_exceeds_bound(self, listing_engine):
        gated = _GatedEngine(listing_engine)
        max_pending = 4

        async def go():
            async with AsyncSearchService(
                gated, max_wait_ms=0.0, max_batch=2, max_pending=max_pending
            ) as service:
                outcomes = []
                submissions = []
                for i in range(12):
                    submissions.append(
                        asyncio.ensure_future(service.submit("A", tau=0.1))
                    )
                    await asyncio.sleep(0)
                    stats = service.stats()
                    assert (
                        stats["queue_depth"] + stats["in_flight"] <= max_pending
                    )
                gated.gate.set()
                for submission in submissions:
                    try:
                        outcomes.append(await submission)
                    except ServiceOverloadedError:
                        outcomes.append(None)
                return outcomes, service.stats()

        outcomes, stats = asyncio.run(go())
        accepted = [outcome for outcome in outcomes if outcome is not None]
        assert stats["rejected"] == 12 - len(accepted)
        assert len(accepted) <= max_pending + 1  # one slot can free mid-storm
        expected = listing_engine.search("A", tau=0.1).matches
        for result in accepted:
            assert result.matches == expected


class TestCallerCancellation:
    """Cancelling one awaited submit must not poison its window-mates."""

    def test_cancel_in_flight_sibling(self, listing_engine):
        gated = _GatedEngine(listing_engine)

        async def go():
            async with AsyncSearchService(
                gated, max_wait_ms=0.0, max_batch=8, max_pending=8
            ) as service:
                keep_a = asyncio.ensure_future(service.submit("A", tau=0.1))
                victim = asyncio.ensure_future(service.submit("A", tau=0.2))
                keep_b = asyncio.ensure_future(service.submit("A", tau=0.4))
                await _wait_for(lambda: service.stats()["in_flight"] == 3)
                victim.cancel()  # mid-window: its future is already popped
                gated.gate.set()
                results = await asyncio.gather(
                    keep_a, victim, keep_b, return_exceptions=True
                )
                return results, service.stats()

        (result_a, cancelled, result_b), stats = asyncio.run(go())
        assert isinstance(cancelled, asyncio.CancelledError)
        # Siblings in the same window still answer correctly.
        assert result_a.matches == listing_engine.search("A", tau=0.1).matches
        assert result_b.matches == listing_engine.search("A", tau=0.4).matches
        # Accounting: the cancelled request is neither completed nor failed,
        # and nothing stays in flight.
        assert stats["cancelled"] == 1
        assert stats["completed"] == 2
        assert stats["failed"] == 0
        assert stats["in_flight"] == 0
        assert stats["queue_depth"] == 0
        assert stats["submitted"] == 3

    def test_cancelled_duplicate_does_not_starve_deduped_twin(self, listing_engine):
        # Two identical requests share one evaluation; cancelling one must
        # not take the shared answer away from the other.
        gated = _GatedEngine(listing_engine)

        async def go():
            async with AsyncSearchService(
                gated, max_wait_ms=0.0, max_batch=8, max_pending=8
            ) as service:
                victim = asyncio.ensure_future(service.submit("A", tau=0.1))
                twin = asyncio.ensure_future(service.submit("A", tau=0.1))
                await _wait_for(lambda: service.stats()["in_flight"] == 2)
                victim.cancel()
                gated.gate.set()
                results = await asyncio.gather(
                    victim, twin, return_exceptions=True
                )
                return results, service.stats()

        (cancelled, twin), stats = asyncio.run(go())
        assert isinstance(cancelled, asyncio.CancelledError)
        assert twin.matches == listing_engine.search("A", tau=0.1).matches
        assert stats["cancelled"] == 1
        assert stats["completed"] == 1
        assert stats["deduplicated"] == 1
