"""ReplicaSet: routing equivalence, health/failover, drain-then-swap.

The routing contract is that replication is *invisible* in the answers:
every replica holds a copy of the same index, so least-loaded dispatch,
hedging and failover must all return byte-identical results to a single
replica — only the stats may differ.  The async tests drive the event
loop through ``asyncio.run`` directly, like the service tests.
"""

import random
import threading
import time

import pytest

from repro.api import SearchRequest, build_index
from repro.exceptions import (
    NoHealthyReplicaError,
    ThresholdError,
    DrainTimeoutError,
    ValidationError,
)
from repro.serving import ReplicaSet
from tests.conftest import make_random_uncertain_string


def _documents(seed=11, count=6):
    return [
        make_random_uncertain_string(random.Random(seed + i).randint(12, 30), 0.3, seed=seed + i)
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def documents():
    return _documents()


@pytest.fixture(scope="module")
def reference_engine(documents):
    return build_index(documents, tau_min=0.05)


def _fresh_engines(documents, count):
    # Separate builds over the same input: genuinely distinct engine
    # objects (separate caches, separate arrays) holding the same index.
    return [build_index(documents, tau_min=0.05) for _ in range(count)]


def _requests(engine, count, seed):
    rng = random.Random(seed)
    patterns = []
    for document in engine.index._collection:
        text = document.most_likely_string()
        patterns.extend(text[i : i + 2] for i in range(0, len(text) - 2, 5))
    return [
        SearchRequest(
            rng.choice(patterns),
            tau=round(rng.uniform(engine.tau_min, 0.9), 3),
            top_k=rng.choice([None, None, rng.randint(1, 4)]),
        )
        for _ in range(count)
    ]


class _RecordingEngine:
    """Wraps a real engine; counts batches and records close() calls."""

    def __init__(self, engine):
        self.engine = engine
        self.batches = 0
        self.closed = False

    def __getattr__(self, name):
        return getattr(self.engine, name)

    def search_many(self, requests):
        self.batches += 1
        return self.engine.search_many(requests)

    def close(self):
        self.closed = True


class _FaultyEngine:
    """Fails with an infrastructure error for the first ``faults`` batches."""

    def __init__(self, engine, faults=10**9):
        self.engine = engine
        self.remaining = faults
        self.attempts = 0

    def __getattr__(self, name):
        return getattr(self.engine, name)

    def search_many(self, requests):
        self.attempts += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise OSError("replica storage went away")
        return self.engine.search_many(requests)


class _GateEngine:
    """Blocks search_many on an event so in-flight windows are observable."""

    def __init__(self, engine):
        self.engine = engine
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.closed = False

    def __getattr__(self, name):
        return getattr(self.engine, name)

    def search_many(self, requests):
        self.entered.set()
        assert self.gate.wait(timeout=10.0), "test gate never released"
        return self.engine.search_many(requests)

    def close(self):
        self.closed = True


class TestRoutingEquivalence:
    @pytest.mark.parametrize("replicas", [1, 2, 4])
    def test_byte_identical_to_single_engine(
        self, documents, reference_engine, replicas
    ):
        replica_set = ReplicaSet(_fresh_engines(documents, replicas))
        try:
            requests = _requests(reference_engine, 40, seed=3)
            routed = replica_set.search_many(requests)
            direct = reference_engine.search_many(requests)
            for got, want in zip(routed, direct):
                assert got.matches == want.matches
        finally:
            replica_set.close()

    def test_hedged_dispatch_byte_identical(self, documents, reference_engine):
        # hedge_after_ms=0 hedges every batch that does not finish
        # instantly; whichever replica wins, answers must not change.
        replica_set = ReplicaSet(_fresh_engines(documents, 3), hedge_after_ms=0.0)
        try:
            requests = _requests(reference_engine, 30, seed=4)
            for request in requests:
                (routed,) = replica_set.search_many([request])
                assert routed.matches == reference_engine.search(request).matches
            stats = replica_set.stats()
            assert stats["hedges"] >= 0  # timing-dependent; never negative
            assert stats["hedge_wins"] <= stats["hedges"]
        finally:
            replica_set.close()

    def test_least_loaded_ties_break_on_lowest_ordinal(self, documents):
        engines = [_RecordingEngine(e) for e in _fresh_engines(documents, 3)]
        replica_set = ReplicaSet(engines)
        try:
            for _ in range(5):
                replica_set.search_many([SearchRequest("A", tau=0.1)])
            # Sequential batches always find every replica idle: the tie
            # breaks on the lowest ordinal, so replica 0 serves them all.
            assert engines[0].batches == 5
            assert engines[1].batches == 0 and engines[2].batches == 0
            per_replica = replica_set.stats()["replicas"]
            assert per_replica[0]["dispatches"] == 5
            assert per_replica[0]["in_flight"] == 0
        finally:
            replica_set.close(close_engines=False)

    def test_engine_vocabulary_surface(self, documents, reference_engine):
        replica_set = ReplicaSet(_fresh_engines(documents, 2))
        try:
            assert replica_set.replica_count == 2
            assert replica_set.kind == reference_engine.kind
            assert replica_set.tau_min == reference_engine.tau_min
            assert replica_set.is_listing is reference_engine.is_listing
            assert "healthy=2" in repr(replica_set)
        finally:
            replica_set.close()


class TestHealthAndFailover:
    def test_infrastructure_fault_fails_over(self, documents, reference_engine):
        faulty = _FaultyEngine(reference_engine, faults=1)
        good = _RecordingEngine(build_index(documents, tau_min=0.05))
        replica_set = ReplicaSet([faulty, good])
        try:
            request = SearchRequest("A", tau=0.1)
            (result,) = replica_set.search_many([request])
            assert result.matches == reference_engine.search(request).matches
            stats = replica_set.stats()
            assert stats["failovers"] == 1
            assert stats["replicas"][0]["faults"] == 1
            assert good.batches == 1
        finally:
            replica_set.close(close_engines=False)

    def test_request_errors_are_not_health_events(self, documents):
        replica_set = ReplicaSet(_fresh_engines(documents, 2))
        try:
            # Request errors stay lazy (engine semantics): they surface when
            # the result is touched, and cost the replica nothing.
            (result,) = replica_set.search_many([SearchRequest("A", tau=0.001)])
            with pytest.raises(ThresholdError):
                result.matches
            stats = replica_set.stats()
            assert stats["failovers"] == 0
            assert stats["healthy_count"] == 2
            assert all(r["faults"] == 0 for r in stats["replicas"])
        finally:
            replica_set.close()

    def test_replica_marked_unhealthy_and_skipped(self, documents, reference_engine):
        faulty = _FaultyEngine(reference_engine)
        good = _RecordingEngine(build_index(documents, tau_min=0.05))
        replica_set = ReplicaSet(
            [faulty, good], max_consecutive_faults=1, probe_after=100
        )
        try:
            request = SearchRequest("A", tau=0.1)
            replica_set.search_many([request])  # faults replica 0, fails over
            attempts_after_first = faulty.attempts
            for _ in range(4):
                replica_set.search_many([request])
            # Replica 0 is out of the rotation: no further attempts hit it.
            assert faulty.attempts == attempts_after_first == 1
            stats = replica_set.stats()
            assert stats["healthy_count"] == 1
            assert stats["replicas"][0]["healthy"] is False
        finally:
            replica_set.close(close_engines=False)

    def test_all_unhealthy_raises_no_healthy_replica(self, documents, reference_engine):
        replica_set = ReplicaSet(
            [_FaultyEngine(reference_engine), _FaultyEngine(reference_engine)],
            max_consecutive_faults=1,
            probe_after=100,
        )
        try:
            request = SearchRequest("A", tau=0.1)
            with pytest.raises(OSError):
                replica_set.search_many([request])  # both fault and go unhealthy
            with pytest.raises(NoHealthyReplicaError):
                replica_set.search_many([request])
        finally:
            replica_set.close(close_engines=False)

    def test_probe_restores_recovered_replica(self, documents, reference_engine):
        flaky = _FaultyEngine(reference_engine, faults=1)
        good = _RecordingEngine(build_index(documents, tau_min=0.05))
        replica_set = ReplicaSet(
            [flaky, good], max_consecutive_faults=1, probe_after=2
        )
        try:
            request = SearchRequest("A", tau=0.1)
            replica_set.search_many([request])  # replica 0 faults, goes unhealthy
            assert replica_set.stats()["healthy_count"] == 1
            for _ in range(4):  # dispatches accumulate until the probe window
                replica_set.search_many([request])
            assert flaky.attempts >= 2  # the probe batch reached replica 0
            assert replica_set.stats()["healthy_count"] == 2
        finally:
            replica_set.close(close_engines=False)


class TestDrainThenSwap:
    def test_swap_replaces_answers_and_closes_old_engines(self, documents):
        other_documents = _documents(seed=77)
        old_engines = [_RecordingEngine(build_index(documents, tau_min=0.05)) for _ in range(2)]
        new_engines = [build_index(other_documents, tau_min=0.05) for _ in range(2)]
        replica_set = ReplicaSet(old_engines)
        try:
            request = SearchRequest("A", tau=0.1)
            before = replica_set.search_many([request])[0].matches
            assert before == old_engines[0].engine.search(request).matches
            previous = replica_set.swap(lambda slot: new_engines[slot])
            assert previous == old_engines
            assert all(engine.closed for engine in old_engines)
            after = replica_set.search_many([request])[0].matches
            assert after == new_engines[0].search(request).matches
            assert replica_set.stats()["swaps"] == 2
        finally:
            replica_set.close(close_engines=False)

    def test_swap_waits_for_in_flight_batches_to_drain(self, documents):
        gated = _GateEngine(build_index(documents, tau_min=0.05))
        replacement = build_index(documents, tau_min=0.05)
        replica_set = ReplicaSet([gated])
        request = SearchRequest("A", tau=0.1)
        outcome = {}

        def query():
            outcome["matches"] = replica_set.search_many([request])[0].matches

        def swap():
            replica_set.swap(lambda slot: replacement)
            outcome["swap_done_at"] = time.monotonic()

        try:
            querier = threading.Thread(target=query)
            querier.start()
            assert gated.entered.wait(timeout=10.0)
            swapper = threading.Thread(target=swap)
            swapper.start()
            time.sleep(0.05)
            # The in-flight batch still holds the old engine: swap must not
            # have closed it out from under the query.
            assert not gated.closed
            released_at = time.monotonic()
            gated.gate.set()
            querier.join(timeout=10.0)
            swapper.join(timeout=10.0)
            assert not querier.is_alive() and not swapper.is_alive()
            assert gated.closed  # drained, then closed
            assert outcome["swap_done_at"] >= released_at
            assert outcome["matches"] == replacement.search(request).matches
        finally:
            gated.gate.set()
            replica_set.close(close_engines=False)

    def test_swap_drain_timeout_raises(self, documents):
        gated = _GateEngine(build_index(documents, tau_min=0.05))
        replacement = build_index(documents, tau_min=0.05)
        replica_set = ReplicaSet([gated])
        request = SearchRequest("A", tau=0.1)
        try:
            querier = threading.Thread(
                target=lambda: replica_set.search_many([request])
            )
            querier.start()
            assert gated.entered.wait(timeout=10.0)
            with pytest.raises(DrainTimeoutError, match="drain timeout"):
                replica_set.swap(lambda slot: replacement, drain_timeout=0.05)
        finally:
            gated.gate.set()
            querier.join(timeout=10.0)
            replica_set.close(close_engines=False)


class TestLoadAndLifecycle:
    def test_load_opens_mmap_sharing_replicas(self, tmp_path, documents, reference_engine):
        archive = reference_engine.save(tmp_path / "index")
        replica_set = ReplicaSet.load(archive, replicas=2, mmap=True)
        try:
            assert replica_set.replica_count == 2
            request = SearchRequest("A", tau=0.1)
            (result,) = replica_set.search_many([request])
            assert result.matches == reference_engine.search(request).matches
        finally:
            replica_set.close()

    def test_validation(self, documents, reference_engine):
        with pytest.raises(ValidationError):
            ReplicaSet([])
        with pytest.raises(ValidationError):
            ReplicaSet([reference_engine], hedge_after_ms=-1.0)
        with pytest.raises(ValidationError):
            ReplicaSet([reference_engine], max_consecutive_faults=0)
        with pytest.raises(ValidationError):
            ReplicaSet([reference_engine], probe_after=0)
        with pytest.raises(ValidationError):
            ReplicaSet.load("nowhere", replicas=0)

    def test_closed_set_rejects_dispatch(self, documents, reference_engine):
        replica_set = ReplicaSet([reference_engine])
        replica_set.close(close_engines=False)
        with pytest.raises(ValidationError):
            replica_set.search_many([SearchRequest("A", tau=0.1)])
        replica_set.close(close_engines=False)  # idempotent

    def test_context_manager(self, documents):
        recording = _RecordingEngine(build_index(documents, tau_min=0.05))
        with ReplicaSet([recording]) as replica_set:
            replica_set.search_many([SearchRequest("A", tau=0.1)])
        assert recording.closed

    def test_stats_shape(self, documents, reference_engine):
        replica_set = ReplicaSet([reference_engine], hedge_after_ms=5.0)
        try:
            replica_set.search_many([SearchRequest("A", tau=0.1)])
            stats = replica_set.stats()
            assert stats["replica_count"] == 1
            assert stats["healthy_count"] == 1
            assert stats["config"]["hedge_after_ms"] == 5.0
            assert stats["replicas"][0]["dispatches"] == 1
        finally:
            replica_set.close(close_engines=False)
