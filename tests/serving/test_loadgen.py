"""Load generator: deterministic plans, closed/poisson loops, CLI.

The generator's request stream must be a pure function of the profile, and
its reports must count statuses rather than raise on them — a 4xx storm is
a measurement, not a test failure.
"""

import asyncio
import json
import queue
import random
import threading

import pytest

from repro.api import build_index
from repro.exceptions import ValidationError
from repro.serving import (
    AsyncSearchService,
    LoadProfile,
    SearchHttpApp,
    SearchHttpServer,
    run_load,
    socket_dispatch,
)
from repro.serving import loadgen
from tests.conftest import make_random_uncertain_string


@pytest.fixture(scope="module")
def listing_engine():
    rng = random.Random(11)
    documents = [
        make_random_uncertain_string(rng.randint(12, 30), 0.3, seed=seed)
        for seed in range(6)
    ]
    return build_index(documents, tau_min=0.05)


class TestLoadProfile:
    def test_plan_is_deterministic(self):
        profile = LoadProfile(
            patterns=("A", "B"), taus=(0.1, 0.5), requests=25, seed=7
        )
        assert profile.plan() == profile.plan()
        assert profile.plan() == LoadProfile(
            patterns=("A", "B"), taus=(0.1, 0.5), requests=25, seed=7
        ).plan()
        # A different seed reshuffles the stream.
        assert profile.plan() != LoadProfile(
            patterns=("A", "B"), taus=(0.1, 0.5), requests=25, seed=8
        ).plan()

    def test_plan_rows_carry_parameters(self):
        profile = LoadProfile(
            patterns=("A",), taus=(0.3,), top_k=2, page_limit=5, requests=3
        )
        for target, body, offset in profile.plan():
            assert target == "/search"
            decoded = json.loads(body)
            assert decoded == {"pattern": "A", "tau": 0.3, "top_k": 2, "limit": 5}
            assert offset == 0.0  # closed loop: workers pace themselves

    def test_poisson_offsets_are_monotonic(self):
        profile = LoadProfile(
            patterns=("A",), requests=50, arrival="poisson", rate=100.0, seed=3
        )
        offsets = [offset for _, _, offset in profile.plan()]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            LoadProfile(patterns=())
        with pytest.raises(ValidationError):
            LoadProfile(patterns=("A",), requests=0)
        with pytest.raises(ValidationError):
            LoadProfile(patterns=("A",), concurrency=0)
        with pytest.raises(ValidationError):
            LoadProfile(patterns=("A",), arrival="open")
        with pytest.raises(ValidationError):
            LoadProfile(patterns=("A",), arrival="poisson")  # rate missing
        with pytest.raises(ValidationError):
            LoadProfile(patterns=("A",), page_limit=-1)
        with pytest.raises(ValidationError):
            LoadProfile(patterns=("A",), timeout_ms=0.0)

    def test_timeout_ms_rides_every_plan_row(self):
        profile = LoadProfile(
            patterns=("A",), taus=(0.3,), requests=3, timeout_ms=250.0
        )
        for _, body, _ in profile.plan():
            assert json.loads(body)["timeout_ms"] == 250.0
        # And stays absent when unset — request bodies remain minimal.
        for _, body, _ in LoadProfile(patterns=("A",), taus=(0.3,), requests=3).plan():
            assert "timeout_ms" not in json.loads(body)


class TestRunLoad:
    def test_closed_loop_in_process(self, listing_engine):
        profile = LoadProfile(
            patterns=("A", "C"), taus=(0.1, 0.4), requests=40, concurrency=4
        )

        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.5) as service:
                return await run_load(SearchHttpApp(service).dispatch, profile)

        report = asyncio.run(go())
        assert report.requests == 40
        assert report.ok == 40
        assert report.by_status == {200: 40}
        assert report.qps > 0
        latency = report.latency_ms
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]

    def test_poisson_loop_in_process(self, listing_engine):
        profile = LoadProfile(
            patterns=("A",),
            taus=(0.1,),
            requests=30,
            concurrency=4,
            arrival="poisson",
            rate=2000.0,
            seed=2,
        )

        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.2) as service:
                return await run_load(SearchHttpApp(service).dispatch, profile)

        report = asyncio.run(go())
        assert report.requests == 30
        assert report.ok == 30

    def test_error_statuses_are_counted_not_raised(self, listing_engine):
        # tau=0.02 is below tau_min=0.05: every request answers 400.
        profile = LoadProfile(patterns=("A",), taus=(0.02,), requests=10)

        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.0) as service:
                return await run_load(SearchHttpApp(service).dispatch, profile)

        report = asyncio.run(go())
        assert report.by_status == {400: 10}
        assert report.ok == 0
        # Failures are also classified by taxonomy type off the error body.
        assert report.by_error == {"ThresholdError": 10}

    def test_to_dict_shape(self, listing_engine):
        profile = LoadProfile(patterns=("A",), taus=(0.1,), requests=5)

        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.0) as service:
                return await run_load(SearchHttpApp(service).dispatch, profile)

        report = asyncio.run(go()).to_dict()
        assert report["requests"] == 5
        assert report["by_status"] == {"200": 5}
        assert report["by_error"] == {}  # all-2xx runs report an empty breakdown
        assert set(report["latency_ms"]) == {"p50", "p95", "p99", "mean", "max"}
        json.dumps(report)  # JSON-serializable end to end


def _serve_in_thread(engine, ready, done):
    """Run service + HTTP server on a private loop until ``done`` is set."""

    async def run():
        async with AsyncSearchService(engine, max_wait_ms=0.2) as service:
            async with SearchHttpServer(SearchHttpApp(service)) as server:
                ready.put(server.port)
                while not done.is_set():
                    await asyncio.sleep(0.01)

    asyncio.run(run())


class TestSocketTransportAndCli:
    def test_socket_dispatch_over_live_server(self, listing_engine):
        async def go():
            async with AsyncSearchService(listing_engine, max_wait_ms=0.2) as service:
                async with SearchHttpServer(SearchHttpApp(service)) as server:
                    dispatch = socket_dispatch(server.host, server.port)
                    profile = LoadProfile(
                        patterns=("A",), taus=(0.1,), requests=12, concurrency=3
                    )
                    return await run_load(dispatch, profile)

        report = asyncio.run(go())
        assert report.requests == 12
        assert report.ok == 12

    def test_cli_main_against_live_server(self, listing_engine, capsys):
        ready = queue.Queue()
        done = threading.Event()
        thread = threading.Thread(
            target=_serve_in_thread, args=(listing_engine, ready, done), daemon=True
        )
        thread.start()
        try:
            port = ready.get(timeout=30)
            code = loadgen.main(
                [
                    "--port",
                    str(port),
                    "--pattern",
                    "A",
                    "--tau",
                    "0.1",
                    "--requests",
                    "15",
                    "--concurrency",
                    "3",
                    "--seed",
                    "5",
                    "--timeout-ms",
                    "30000",
                ]
            )
        finally:
            done.set()
            thread.join(timeout=30)
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 15
        assert report["ok"] == 15
        assert report["qps"] > 0
        assert report["by_error"] == {}  # the generous --timeout-ms never fires
