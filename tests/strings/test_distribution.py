"""Tests for repro.strings.distribution."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.strings.distribution import PositionDistribution


class TestConstruction:
    def test_from_mapping(self):
        d = PositionDistribution({"a": 0.3, "b": 0.7})
        assert d.probability("a") == pytest.approx(0.3)
        assert d.probability("b") == pytest.approx(0.7)

    def test_from_pairs(self):
        d = PositionDistribution([("x", 0.5), ("y", 0.5)])
        assert set(d.characters) == {"x", "y"}

    def test_from_single_character(self):
        d = PositionDistribution("q")
        assert d.is_certain
        assert d.probability("q") == 1.0

    def test_from_another_distribution_copies(self):
        original = PositionDistribution({"a": 1.0})
        copy = PositionDistribution(original)
        assert copy == original

    def test_certain_factory(self):
        assert PositionDistribution.certain("z").probability("z") == 1.0

    def test_uniform_factory(self):
        d = PositionDistribution.uniform(["a", "b", "c", "d"])
        assert d.probability("a") == pytest.approx(0.25)

    def test_uniform_empty_raises(self):
        with pytest.raises(ValidationError):
            PositionDistribution.uniform([])

    def test_rejects_probabilities_not_summing_to_one(self):
        with pytest.raises(ValidationError):
            PositionDistribution({"a": 0.4, "b": 0.4})

    def test_normalize_rescales(self):
        d = PositionDistribution({"a": 2.0, "b": 6.0}, normalize=True)
        assert d.probability("a") == pytest.approx(0.25)
        assert d.probability("b") == pytest.approx(0.75)

    def test_rejects_duplicate_characters(self):
        with pytest.raises(ValidationError):
            PositionDistribution([("a", 0.5), ("a", 0.5)])

    def test_rejects_negative_probability(self):
        with pytest.raises(ValidationError):
            PositionDistribution({"a": -0.1, "b": 1.1})

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            PositionDistribution({})

    def test_rejects_multicharacter_keys(self):
        with pytest.raises(ValidationError):
            PositionDistribution({"ab": 1.0})

    def test_drops_zero_probability_characters(self):
        d = PositionDistribution({"a": 1.0, "b": 0.0})
        assert "b" not in d
        assert len(d) == 1

    def test_unsupported_type_raises(self):
        with pytest.raises(ValidationError):
            PositionDistribution(42)  # type: ignore[arg-type]


class TestQueries:
    def test_probability_of_absent_character_is_zero(self):
        d = PositionDistribution({"a": 1.0})
        assert d.probability("b") == 0.0

    def test_log_probability(self):
        d = PositionDistribution({"a": 0.5, "b": 0.5})
        assert d.log_probability("a") == pytest.approx(math.log(0.5))
        assert d.log_probability("z") == float("-inf")

    def test_most_likely(self):
        d = PositionDistribution({"a": 0.3, "b": 0.6, "d": 0.1})
        assert d.most_likely() == ("b", 0.6)

    def test_support_threshold(self):
        d = PositionDistribution({"a": 0.3, "b": 0.6, "d": 0.1})
        assert set(d.support(0.2)) == {"a", "b"}

    def test_entropy_of_certain_distribution_is_zero(self):
        assert PositionDistribution.certain("a").entropy == pytest.approx(0.0)

    def test_entropy_of_uniform_is_log_k(self):
        d = PositionDistribution.uniform(["a", "b", "c", "d"])
        assert d.entropy == pytest.approx(math.log(4))

    def test_as_dict_round_trip(self):
        table = {"a": 0.25, "b": 0.75}
        assert PositionDistribution(table).as_dict() == pytest.approx(table)

    def test_restricted_renormalizes(self):
        d = PositionDistribution({"a": 0.25, "b": 0.25, "c": 0.5})
        restricted = d.restricted(["a", "b"])
        assert restricted.probability("a") == pytest.approx(0.5)
        assert "c" not in restricted

    def test_restricted_to_nothing_raises(self):
        with pytest.raises(ValidationError):
            PositionDistribution({"a": 1.0}).restricted(["z"])


class TestDunderMethods:
    def test_equality_ignores_order(self):
        assert PositionDistribution({"a": 0.4, "b": 0.6}) == PositionDistribution(
            {"b": 0.6, "a": 0.4}
        )

    def test_inequality_with_different_support(self):
        assert PositionDistribution({"a": 1.0}) != PositionDistribution({"b": 1.0})

    def test_hash_consistent_with_equality(self):
        a = PositionDistribution({"a": 0.4, "b": 0.6})
        b = PositionDistribution({"b": 0.6, "a": 0.4})
        assert hash(a) == hash(b)

    def test_iteration_yields_pairs(self):
        d = PositionDistribution({"a": 0.4, "b": 0.6})
        assert dict(iter(d)) == pytest.approx({"a": 0.4, "b": 0.6})

    def test_repr_mentions_characters(self):
        assert "'a'" in repr(PositionDistribution({"a": 1.0}))
