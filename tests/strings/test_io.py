"""Tests for repro.strings.io (serialization and FASTQ import)."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.strings import UncertainString, UncertainStringCollection
from repro.strings.io import (
    dump_collection,
    dump_uncertain_string,
    load_collection,
    load_fastq,
    load_uncertain_string,
    parse_fastq,
    phred_to_error_probability,
    uncertain_string_from_read,
    uncertain_string_from_rows,
    uncertain_string_to_rows,
)


class TestJsonRoundTrip:
    def test_rows_round_trip(self, figure1_string):
        rebuilt = uncertain_string_from_rows(uncertain_string_to_rows(figure1_string))
        assert rebuilt == figure1_string

    def test_single_string_file_round_trip(self, tmp_path, figure1_string):
        path = tmp_path / "string.json"
        dump_uncertain_string(figure1_string, path)
        assert load_uncertain_string(path) == figure1_string

    def test_single_string_missing_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": []}), encoding="utf-8")
        with pytest.raises(ValidationError):
            load_uncertain_string(path)

    def test_collection_round_trip(self, tmp_path, figure2_collection):
        path = tmp_path / "collection.jsonl"
        dump_collection(figure2_collection, path)
        loaded = load_collection(path)
        assert len(loaded) == len(figure2_collection)
        assert loaded.names == figure2_collection.names
        for original, restored in zip(figure2_collection, loaded):
            assert original == restored

    def test_collection_bad_json_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValidationError):
            load_collection(path)

    def test_collection_missing_positions(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(json.dumps({"name": "d0"}) + "\n", encoding="utf-8")
        with pytest.raises(ValidationError):
            load_collection(path)

    def test_empty_collection_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n", encoding="utf-8")
        with pytest.raises(ValidationError):
            load_collection(path)


class TestPhred:
    def test_quality_to_error(self):
        assert phred_to_error_probability(10) == pytest.approx(0.1)
        assert phred_to_error_probability(20) == pytest.approx(0.01)
        assert phred_to_error_probability(0) == pytest.approx(1.0)

    def test_negative_quality_rejected(self):
        with pytest.raises(ValidationError):
            phred_to_error_probability(-1)


class TestReadImport:
    def test_read_becomes_uncertain_string(self):
        string = uncertain_string_from_read("ACGT", [30, 30, 10, 2])
        assert len(string) == 4
        # High-quality base is almost certain.
        assert string[0].probability("A") > 0.99
        # Low-quality base keeps noticeable probability on alternatives.
        assert string[3].probability("T") < 0.5
        for distribution in string:
            assert sum(distribution.probabilities) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            uncertain_string_from_read("ACG", [30, 30])

    def test_empty_read_rejected(self):
        with pytest.raises(ValidationError):
            uncertain_string_from_read("", [])


class TestFastq:
    FASTQ = (
        "@read1\n"
        "ACGT\n"
        "+\n"
        "IIII\n"
        "@read2\n"
        "GGCC\n"
        "+\n"
        "!!II\n"
    )

    def test_parse_fastq_records(self):
        strings = list(parse_fastq(self.FASTQ.splitlines()))
        assert len(strings) == 2
        assert strings[0].name == "read1"
        assert len(strings[1]) == 4

    def test_fastq_quality_affects_uncertainty(self):
        strings = list(parse_fastq(self.FASTQ.splitlines()))
        # '!' is Phred 0 (total uncertainty), 'I' is Phred 40 (near-certain).
        assert not strings[1][0].is_certain
        assert strings[0][0].probability("A") > 0.99

    def test_load_fastq_file(self, tmp_path):
        path = tmp_path / "reads.fastq"
        path.write_text(self.FASTQ, encoding="utf-8")
        collection = load_fastq(path)
        assert isinstance(collection, UncertainStringCollection)
        assert len(collection) == 2

    def test_malformed_header_rejected(self):
        bad = self.FASTQ.replace("@read1", "read1")
        with pytest.raises(ValidationError):
            list(parse_fastq(bad.splitlines()))

    def test_malformed_separator_rejected(self):
        bad = self.FASTQ.replace("+\n", "-\n", 1)
        with pytest.raises(ValidationError):
            list(parse_fastq(bad.splitlines()))

    def test_wrong_line_count_rejected(self):
        with pytest.raises(ValidationError):
            list(parse_fastq(["@r", "ACGT", "+"]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            list(parse_fastq(["@r", "ACGT", "+", "II"]))
