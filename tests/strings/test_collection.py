"""Tests for repro.strings.collection."""

import pytest

from repro.exceptions import ValidationError
from repro.strings import UncertainString, UncertainStringCollection


class TestConstruction:
    def test_basic_properties(self, figure2_collection):
        assert len(figure2_collection) == 3
        assert figure2_collection.total_positions == 9
        assert figure2_collection.names == ("d1", "d2", "d3")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            UncertainStringCollection([])

    def test_non_uncertain_string_rejected(self):
        with pytest.raises(ValidationError):
            UncertainStringCollection(["not a string"])  # type: ignore[list-item]

    def test_explicit_names(self):
        documents = [UncertainString.from_deterministic("ab") for _ in range(2)]
        collection = UncertainStringCollection(documents, names=["x", "y"])
        assert collection.name_of(1) == "y"
        assert collection.identifier_of("x") == 0

    def test_name_count_mismatch(self):
        documents = [UncertainString.from_deterministic("ab")]
        with pytest.raises(ValidationError):
            UncertainStringCollection(documents, names=["a", "b"])

    def test_unknown_name_lookup(self, figure2_collection):
        with pytest.raises(ValidationError):
            figure2_collection.identifier_of("nope")

    def test_default_names_fall_back_to_index(self):
        documents = [UncertainString.from_deterministic("ab") for _ in range(2)]
        collection = UncertainStringCollection(documents)
        assert collection.names == ("d0", "d1")

    def test_from_tables(self):
        collection = UncertainStringCollection.from_tables(
            [[{"a": 1.0}], [{"b": 0.5, "c": 0.5}]]
        )
        assert len(collection) == 2
        assert collection[1].uncertain_position_count == 1

    def test_iteration_and_indexing(self, figure2_collection):
        assert list(figure2_collection)[0] is figure2_collection[0]


class TestQueries:
    def test_figure2_listing_example(self, figure2_collection):
        # Paper Figure 2: the query ("BF", 0.1) reports only d1.
        assert figure2_collection.matching_documents("BF", 0.1) == [0]

    def test_matching_documents_low_threshold(self, figure2_collection):
        assert figure2_collection.matching_documents("BF", 0.01) == [0, 1]

    def test_matching_documents_no_match(self, figure2_collection):
        assert figure2_collection.matching_documents("ZZ", 0.1) == []

    def test_document_relevance_max(self, figure2_collection):
        relevance = figure2_collection.document_relevance("BF", 0, "max")
        assert relevance == pytest.approx(0.3 * 0.5)

    def test_document_relevance_unknown_metric(self, figure2_collection):
        with pytest.raises(ValidationError):
            figure2_collection.document_relevance("BF", 0, "banana")

    def test_document_relevance_absent_pattern(self, figure2_collection):
        assert figure2_collection.document_relevance("ZZ", 0, "max") == 0.0

    def test_figure6_relevance_metrics(self):
        # The uncertain string of Figure 6 with pattern "BFA".
        figure6 = UncertainString(
            [
                {"A": 0.4, "B": 0.3, "F": 0.3},
                {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
                {"A": 0.5, "F": 0.5},
                {"A": 0.6, "B": 0.4},
                {"B": 0.5, "F": 0.3, "J": 0.2},
                {"A": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
            ]
        )
        collection = UncertainStringCollection([figure6])
        # "BFA" occurs at positions 0, 1 and 3 with probabilities
        # 0.3*0.3*0.5, 0.3*0.5*0.6 and 0.4*0.3*0.4.
        probabilities = [0.3 * 0.3 * 0.5, 0.3 * 0.5 * 0.6, 0.4 * 0.3 * 0.4]
        assert collection.document_relevance("BFA", 0, "max") == pytest.approx(0.09)
        expected_or = sum(probabilities) - (
            probabilities[0] * probabilities[1] * probabilities[2]
        )
        assert collection.document_relevance("BFA", 0, "or") == pytest.approx(expected_or)

    def test_or_relevance_single_occurrence_equals_probability(self):
        document = UncertainString.from_deterministic("ABC")
        collection = UncertainStringCollection([document])
        assert collection.document_relevance("ABC", 0, "or") == pytest.approx(1.0)
