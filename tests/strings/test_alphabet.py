"""Tests for repro.strings.alphabet."""

import pytest

from repro.exceptions import AlphabetError
from repro.strings.alphabet import (
    Alphabet,
    DNA_SYMBOLS,
    ECG_SYMBOLS,
    PROTEIN_SYMBOLS,
    dna_alphabet,
    ecg_alphabet,
    protein_alphabet,
)


class TestAlphabetConstruction:
    def test_preserves_order_and_size(self):
        sigma = Alphabet("ACGT")
        assert sigma.symbols == ("A", "C", "G", "T")
        assert sigma.size == 4
        assert len(sigma) == 4

    def test_rejects_duplicate_symbols(self):
        with pytest.raises(AlphabetError):
            Alphabet("AAC")

    def test_rejects_multicharacter_symbols(self):
        with pytest.raises(AlphabetError):
            Alphabet(["AB", "C"])

    def test_rejects_empty_alphabet(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_default_is_protein(self):
        assert Alphabet().symbols == PROTEIN_SYMBOLS


class TestAlphabetLookups:
    def test_contains(self):
        sigma = Alphabet("ACGT")
        assert "G" in sigma
        assert "Z" not in sigma

    def test_index(self):
        sigma = Alphabet("ACGT")
        assert sigma.index("A") == 0
        assert sigma.index("T") == 3

    def test_index_unknown_symbol_raises(self):
        with pytest.raises(AlphabetError):
            Alphabet("ACGT").index("X")

    def test_iteration_matches_symbols(self):
        sigma = Alphabet("NLR")
        assert list(sigma) == ["N", "L", "R"]

    def test_validate_string_accepts_members(self):
        sigma = Alphabet("ACGT")
        assert sigma.validate_string("GATTACA") == "GATTACA"

    def test_validate_string_rejects_foreign_character(self):
        with pytest.raises(AlphabetError) as excinfo:
            Alphabet("ACGT").validate_string("GATTAXA")
        assert "position 5" in str(excinfo.value)


class TestPredefinedAlphabets:
    def test_protein_alphabet_has_22_symbols(self):
        assert protein_alphabet().size == 22
        assert len(set(PROTEIN_SYMBOLS)) == 22

    def test_dna_alphabet(self):
        assert dna_alphabet().symbols == DNA_SYMBOLS == ("A", "C", "G", "T")

    def test_ecg_alphabet_contains_paper_symbols(self):
        sigma = ecg_alphabet()
        # N (normal), L (left bundle branch block) and R from the paper's example.
        for symbol in "NLR":
            assert symbol in sigma
        assert sigma.symbols == ECG_SYMBOLS
