"""Tests for repro.strings.possible_worlds (possible-world semantics)."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.strings import UncertainString
from repro.strings.possible_worlds import (
    all_worlds,
    enumerate_worlds,
    substring_occurrence_probability_by_worlds,
    top_k_worlds,
    world_count,
)


class TestWorldCount:
    def test_figure1_world_count(self, figure1_string):
        # Figure 1(b) lists 12 possible worlds: 3 * 2 * 1 * 2 * 1.
        assert world_count(figure1_string) == 12

    def test_deterministic_string_has_one_world(self):
        assert world_count(UncertainString.from_deterministic("abc")) == 1


class TestEnumeration:
    def test_figure1_worlds_sum_to_one(self, figure1_string):
        worlds = all_worlds(figure1_string)
        assert len(worlds) == 12
        assert sum(world.probability for world in worlds) == pytest.approx(1.0)

    def test_figure1_specific_world_probabilities(self, figure1_string):
        worlds = {world.string: world.probability for world in all_worlds(figure1_string)}
        # From Figure 1(b): aadaa has probability .09, badaa .12, dcdca .06.
        assert worlds["aadaa"] == pytest.approx(0.09)
        assert worlds["badaa"] == pytest.approx(0.12)
        assert worlds["dcdca"] == pytest.approx(0.06)

    def test_threshold_filters_worlds(self, figure1_string):
        worlds = all_worlds(figure1_string, tau=0.1)
        assert all(world.probability > 0.1 for world in worlds)
        # Figure 1(b): only the b* worlds have probability > 0.1 (0.12, 0.12).
        assert {world.string for world in worlds} == {"badaa", "badca"}

    def test_sorted_by_decreasing_probability(self, figure1_string):
        worlds = all_worlds(figure1_string)
        probabilities = [world.probability for world in worlds]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_enumeration_limit(self, figure1_string):
        with pytest.raises(ValidationError):
            list(enumerate_worlds(figure1_string, limit=5))


class TestTopK:
    def test_top_1_is_most_likely_world(self, figure1_string):
        best = top_k_worlds(figure1_string, 1)[0]
        exhaustive = all_worlds(figure1_string)[0]
        assert best.probability == pytest.approx(exhaustive.probability)

    def test_top_k_matches_exhaustive_enumeration(self, figure1_string):
        top = top_k_worlds(figure1_string, 5)
        exhaustive = all_worlds(figure1_string)[:5]
        assert [world.probability for world in top] == pytest.approx(
            [world.probability for world in exhaustive]
        )

    def test_k_larger_than_world_count(self, figure1_string):
        assert len(top_k_worlds(figure1_string, 100)) == 12

    def test_invalid_k(self, figure1_string):
        with pytest.raises(ValidationError):
            top_k_worlds(figure1_string, 0)


class TestWorldSemanticsConsistency:
    def test_substring_probability_equals_world_sum(self, figure1_string):
        # The sum over possible worlds containing the substring at a fixed
        # position must equal the partial product of Section 3.2.
        for pattern, position in [("ad", 1), ("da", 2), ("a", 4), ("bad", 0)]:
            by_worlds = substring_occurrence_probability_by_worlds(
                figure1_string, pattern, position
            )
            direct = figure1_string.occurrence_probability(pattern, position)
            assert by_worlds == pytest.approx(direct)

    def test_world_probability_matches_log_occurrence(self, figure1_string):
        for world in all_worlds(figure1_string):
            direct = figure1_string.log_occurrence_probability(world.string, 0)
            assert math.exp(direct) == pytest.approx(world.probability)
