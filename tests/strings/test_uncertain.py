"""Tests for repro.strings.uncertain (the general uncertain-string model)."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.strings import CorrelationModel, CorrelationRule, PositionDistribution, UncertainString


class TestConstruction:
    def test_basic_properties(self, figure1_string):
        assert len(figure1_string) == 5
        assert figure1_string.length == 5
        # Figure 1: 9 characters with non-zero probability over 5 positions.
        assert figure1_string.total_characters == 9
        assert figure1_string.uncertain_position_count == 3
        assert figure1_string.uncertainty_fraction == pytest.approx(0.6)

    def test_from_deterministic(self):
        s = UncertainString.from_deterministic("banana")
        assert s.is_deterministic
        assert s.most_likely_string() == "banana"
        assert s.occurrence_probability("ana", 1) == pytest.approx(1.0)

    def test_from_deterministic_empty_raises(self):
        with pytest.raises(ValidationError):
            UncertainString.from_deterministic("")

    def test_from_table_normalize(self):
        s = UncertainString.from_table([{"a": 2, "b": 2}], normalize=True)
        assert s[0].probability("a") == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            UncertainString([])

    def test_accepts_distribution_instances(self):
        s = UncertainString([PositionDistribution({"x": 1.0}), "y"])
        assert s.most_likely_string() == "xy"

    def test_correlation_model_validated_against_length(self):
        rule = CorrelationRule(5, "a", 0, "b", 0.5, 0.5)
        with pytest.raises(Exception):
            UncertainString([{"a": 1.0}], correlations=CorrelationModel([rule]))

    def test_equality(self, figure1_string):
        clone = UncertainString(list(figure1_string.positions))
        assert clone == figure1_string
        assert figure1_string != UncertainString.from_deterministic("x")

    def test_repr_contains_length(self, figure1_string):
        assert "length=5" in repr(figure1_string)


class TestOccurrenceProbability:
    def test_single_character(self, figure1_string):
        assert figure1_string.occurrence_probability("b", 0) == pytest.approx(0.4)

    def test_paper_figure3_example(self, figure3_string):
        # Section 2: "AT" matches at position 6 with 0.4*0.3=0.12 and at
        # position 8 with 1*0.5=0.5 (zero-based positions).
        assert figure3_string.occurrence_probability("AT", 6) == pytest.approx(0.12)
        assert figure3_string.occurrence_probability("AT", 8) == pytest.approx(0.5)

    def test_paper_sfpq_example(self, figure3_string):
        # Section 3.2: SFPQ at position 1 has probability 0.7*1*1*0.5 = 0.35.
        assert figure3_string.occurrence_probability("SFPQ", 1) == pytest.approx(0.35)

    def test_zero_when_character_absent(self, figure1_string):
        assert figure1_string.occurrence_probability("z", 0) == 0.0

    def test_zero_when_pattern_does_not_fit(self, figure1_string):
        assert figure1_string.occurrence_probability("aaaaaaa", 0) == 0.0
        assert figure1_string.occurrence_probability("a", 10) == 0.0
        assert figure1_string.occurrence_probability("a", -1) == 0.0

    def test_log_probability_consistency(self, figure1_string):
        probability = figure1_string.occurrence_probability("ad", 1)
        log_probability = figure1_string.log_occurrence_probability("ad", 1)
        assert math.exp(log_probability) == pytest.approx(probability)

    def test_empty_pattern_rejected(self, figure1_string):
        with pytest.raises(ValidationError):
            figure1_string.occurrence_probability("", 0)


class TestCorrelatedProbability:
    @pytest.fixture
    def figure4_string(self) -> UncertainString:
        """The Figure 4 string: e/f, q, z with z correlated to e."""
        return UncertainString(
            [{"e": 0.6, "f": 0.4}, {"q": 1.0}, {"z": 1.0}],
            correlations=CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.4)]),
        )

    def test_partner_present_inside_window(self, figure4_string):
        # For the substring "eqz", pr(z) = 0.3 (paper case 1).
        assert figure4_string.occurrence_probability("eqz", 0) == pytest.approx(
            0.6 * 1.0 * 0.3
        )

    def test_partner_absent_inside_window(self, figure4_string):
        # For the substring "fqz", pr(z) = 0.4.
        assert figure4_string.occurrence_probability("fqz", 0) == pytest.approx(
            0.4 * 1.0 * 0.4
        )

    def test_partner_outside_window(self, figure4_string):
        # For the substring "qz", pr(z) = 0.6*0.3 + 0.4*0.4 = 0.34 (case 2).
        assert figure4_string.occurrence_probability("qz", 1) == pytest.approx(0.34)

    def test_character_probability_uses_mixture(self, figure4_string):
        assert figure4_string.character_probability(2, "z") == pytest.approx(0.34)
        assert figure4_string.character_probability(0, "e") == pytest.approx(0.6)


class TestMatchingPositions:
    def test_matches_threshold(self, figure3_string):
        # Only position 8 has "AT" above 0.4 (Section 2 example).
        assert figure3_string.matching_positions("AT", 0.4) == [8]
        assert figure3_string.matching_positions("AT", 0.1) == [6, 8]

    def test_no_match_above_one(self, figure1_string):
        assert figure1_string.matching_positions("a", 1.0) == []

    def test_max_occurrence_probability(self, figure3_string):
        assert figure3_string.max_occurrence_probability("AT") == pytest.approx(0.5)
        assert figure3_string.max_occurrence_probability("ZZ") == 0.0


class TestSlice:
    def test_slice_positions(self, figure1_string):
        part = figure1_string.slice(1, 4)
        assert len(part) == 3
        assert part[0] == figure1_string[1]

    def test_slice_carries_internal_correlation(self):
        s = UncertainString(
            [{"e": 0.6, "f": 0.4}, {"q": 1.0}, {"z": 1.0}],
            correlations=CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.4)]),
        )
        part = s.slice(0, 3)
        assert len(part.correlations) == 1
        dropped = s.slice(1, 3)
        assert len(dropped.correlations) == 0

    def test_invalid_slice_raises(self, figure1_string):
        with pytest.raises(ValidationError):
            figure1_string.slice(3, 2)
        with pytest.raises(ValidationError):
            figure1_string.slice(0, 99)

    def test_to_table_round_trip(self, figure1_string):
        rebuilt = UncertainString.from_table(figure1_string.to_table())
        assert rebuilt == figure1_string
