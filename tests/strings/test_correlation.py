"""Tests for repro.strings.correlation."""

import pytest

from repro.exceptions import CorrelationError
from repro.strings.correlation import CorrelationModel, CorrelationRule


@pytest.fixture
def figure4_rule() -> CorrelationRule:
    """The Figure 4 rule: z at position 2 depends on e at position 0."""
    return CorrelationRule(2, "z", 0, "e", 0.3, 0.4)


class TestCorrelationRule:
    def test_valid_rule(self, figure4_rule):
        assert figure4_rule.position == 2
        assert figure4_rule.partner_position == 0

    def test_conditional_probability(self, figure4_rule):
        assert figure4_rule.conditional_probability(True) == pytest.approx(0.3)
        assert figure4_rule.conditional_probability(False) == pytest.approx(0.4)

    def test_mixture_probability_matches_paper_case2(self, figure4_rule):
        # Paper Section 3.3 case 2: pr(z3) = 0.6 * 0.3 + 0.4 * 0.4 = 0.34.
        assert figure4_rule.mixture_probability(0.6) == pytest.approx(0.34)

    def test_mixture_rejects_invalid_partner_probability(self, figure4_rule):
        with pytest.raises(Exception):
            figure4_rule.mixture_probability(1.5)

    def test_rejects_self_correlation(self):
        with pytest.raises(CorrelationError):
            CorrelationRule(1, "a", 1, "b", 0.5, 0.5)

    def test_rejects_negative_positions(self):
        with pytest.raises(CorrelationError):
            CorrelationRule(-1, "a", 0, "b", 0.5, 0.5)

    def test_rejects_multicharacter(self):
        with pytest.raises(CorrelationError):
            CorrelationRule(0, "ab", 1, "c", 0.5, 0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(Exception):
            CorrelationRule(0, "a", 1, "b", 1.5, 0.5)


class TestCorrelationModel:
    def test_empty_model_is_falsy(self):
        assert not CorrelationModel()
        assert len(CorrelationModel()) == 0

    def test_add_and_lookup(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        assert model.rule_for(2, "z") is figure4_rule
        assert model.rule_for(2, "q") is None
        assert model.rule_for(1, "z") is None

    def test_duplicate_key_rejected(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        with pytest.raises(CorrelationError):
            model.add(CorrelationRule(2, "z", 1, "q", 0.1, 0.2))

    def test_add_requires_rule_instance(self):
        with pytest.raises(CorrelationError):
            CorrelationModel().add("not a rule")  # type: ignore[arg-type]

    def test_rules_in_window(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        assert model.rules_in_window(0, 4) == [figure4_rule]
        assert model.rules_in_window(0, 1) == []

    def test_max_position(self, figure4_rule):
        assert CorrelationModel().max_position() == -1
        assert CorrelationModel([figure4_rule]).max_position() == 2

    def test_validate_against_length(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        model.validate_against_length(3)
        with pytest.raises(CorrelationError):
            model.validate_against_length(2)

    def test_equality(self, figure4_rule):
        assert CorrelationModel([figure4_rule]) == CorrelationModel([figure4_rule])
        assert CorrelationModel([figure4_rule]) != CorrelationModel()

    def test_effective_probability_partner_inside_window(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        value = model.effective_probability(
            2,
            "z",
            0.9,
            window_start=0,
            window_end=2,
            chosen_character_at=lambda position: "e",
            partner_marginal_probability=lambda position, character: 0.6,
        )
        assert value == pytest.approx(0.3)

    def test_effective_probability_partner_absent_inside_window(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        value = model.effective_probability(
            2,
            "z",
            0.9,
            window_start=0,
            window_end=2,
            chosen_character_at=lambda position: "f",
            partner_marginal_probability=lambda position, character: 0.6,
        )
        assert value == pytest.approx(0.4)

    def test_effective_probability_partner_outside_window(self, figure4_rule):
        model = CorrelationModel([figure4_rule])
        value = model.effective_probability(
            2,
            "z",
            0.9,
            window_start=1,
            window_end=2,
            chosen_character_at=lambda position: "?",
            partner_marginal_probability=lambda position, character: 0.6,
        )
        assert value == pytest.approx(0.34)

    def test_effective_probability_without_rule_returns_base(self):
        model = CorrelationModel()
        value = model.effective_probability(
            0,
            "a",
            0.77,
            window_start=0,
            window_end=0,
            chosen_character_at=lambda position: "a",
            partner_marginal_probability=lambda position, character: 0.5,
        )
        assert value == pytest.approx(0.77)
