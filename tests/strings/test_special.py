"""Tests for repro.strings.special (special uncertain strings)."""

import pytest

from repro.exceptions import ValidationError
from repro.strings import SpecialPosition, SpecialUncertainString


class TestSpecialPosition:
    def test_valid_pair(self):
        position = SpecialPosition("a", 0.5)
        assert position.character == "a"
        assert position.probability == 0.5

    def test_zero_probability_rejected(self):
        with pytest.raises(ValidationError):
            SpecialPosition("a", 0.0)

    def test_multicharacter_rejected(self):
        with pytest.raises(ValidationError):
            SpecialPosition("ab", 0.5)


class TestConstruction:
    def test_figure5_text(self, figure5_special_string):
        assert figure5_special_string.text == "banana"
        assert len(figure5_special_string) == 6
        assert figure5_special_string.length == 6

    def test_from_characters_and_probabilities(self):
        x = SpecialUncertainString.from_characters_and_probabilities("ab", [0.5, 1.0])
        assert x.text == "ab"
        assert x[1].probability == 1.0

    def test_from_characters_length_mismatch(self):
        with pytest.raises(ValidationError):
            SpecialUncertainString.from_characters_and_probabilities("ab", [0.5])

    def test_from_deterministic(self):
        x = SpecialUncertainString.from_deterministic("xyz")
        assert x.text == "xyz"
        assert all(position.probability == 1.0 for position in x)

    def test_from_deterministic_empty_raises(self):
        with pytest.raises(ValidationError):
            SpecialUncertainString.from_deterministic("")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            SpecialUncertainString([])

    def test_equality(self, figure5_special_string):
        clone = SpecialUncertainString(list(figure5_special_string))
        assert clone == figure5_special_string
        assert figure5_special_string != SpecialUncertainString.from_deterministic("banana")

    def test_probabilities_are_read_only(self, figure5_special_string):
        with pytest.raises(ValueError):
            figure5_special_string.probabilities[0] = 0.9


class TestProbabilities:
    def test_window_probability_matches_figure5(self, figure5_special_string):
        # C array of Figure 5: prefix products 0.4, 0.28, 0.14, 0.112, ...
        assert figure5_special_string.window_probability(0, 1) == pytest.approx(0.4)
        assert figure5_special_string.window_probability(0, 2) == pytest.approx(0.28)
        assert figure5_special_string.window_probability(0, 3) == pytest.approx(0.14)

    def test_occurrence_probability_requires_character_match(self, figure5_special_string):
        assert figure5_special_string.occurrence_probability("ana", 1) == pytest.approx(
            0.7 * 0.5 * 0.8
        )
        assert figure5_special_string.occurrence_probability("ban", 1) == 0.0

    def test_occurrence_probability_out_of_range(self, figure5_special_string):
        assert figure5_special_string.occurrence_probability("ana", 5) == 0.0
        assert figure5_special_string.occurrence_probability("a", -1) == 0.0

    def test_matching_positions_reproduces_figure5_query(self, figure5_special_string):
        # Figure 5: query ("ana", 0.3) reports only position 4 (1-based), i.e. 3.
        assert figure5_special_string.matching_positions("ana", 0.3) == [3]
        assert figure5_special_string.matching_positions("ana", 0.2) == [1, 3]

    def test_window_probability_invalid_inputs(self, figure5_special_string):
        assert figure5_special_string.window_probability(-1, 2) == 0.0
        assert figure5_special_string.window_probability(0, 0) == 0.0
        assert figure5_special_string.window_probability(4, 10) == 0.0


class TestConversion:
    def test_to_uncertain_string_preserves_probabilities(self, figure5_special_string):
        lifted = figure5_special_string.to_uncertain_string()
        assert len(lifted) == len(figure5_special_string)
        assert lifted.occurrence_probability("ana", 3) == pytest.approx(
            figure5_special_string.occurrence_probability("ana", 3)
        )

    def test_to_uncertain_string_certain_positions_stay_certain(self):
        x = SpecialUncertainString([("a", 1.0), ("b", 0.5)])
        lifted = x.to_uncertain_string()
        assert lifted[0].is_certain
        assert not lifted[1].is_certain
