"""Tests for repro.suffix.rmq (range maximum / minimum query structures)."""

import random

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.suffix.rmq import BlockRMQ, SparseTableRMQ, make_rmq


@pytest.fixture(params=["sparse", "block"])
def rmq_implementation(request):
    return request.param


class TestConstruction:
    def test_empty_rejected(self, rmq_implementation):
        with pytest.raises(ValidationError):
            make_rmq([], implementation=rmq_implementation)

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            SparseTableRMQ(np.zeros((2, 2)))

    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError):
            SparseTableRMQ([1.0], mode="median")  # type: ignore[arg-type]

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValidationError):
            BlockRMQ([1.0, 2.0], block_size=0)

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValidationError):
            make_rmq([1.0], implementation="fenwick")  # type: ignore[arg-type]

    def test_single_element(self, rmq_implementation):
        rmq = make_rmq([3.5], implementation=rmq_implementation)
        assert rmq.query(0, 0) == 0
        assert rmq.query_value(0, 0) == pytest.approx(3.5)


class TestQueries:
    def test_simple_max(self, rmq_implementation):
        rmq = make_rmq([0.1, 0.9, 0.4, 0.7], implementation=rmq_implementation)
        assert rmq.query(0, 3) == 1
        assert rmq.query(2, 3) == 3
        assert rmq.query(2, 2) == 2

    def test_min_mode(self, rmq_implementation):
        rmq = make_rmq(
            [5.0, 1.0, 4.0, 9.0, 2.0], mode="min", implementation=rmq_implementation
        )
        assert rmq.query(0, 4) == 1
        assert rmq.query(2, 4) == 4
        assert rmq.mode == "min"

    def test_invalid_range_rejected(self, rmq_implementation):
        rmq = make_rmq([1.0, 2.0, 3.0], implementation=rmq_implementation)
        with pytest.raises(ValidationError):
            rmq.query(2, 1)
        with pytest.raises(ValidationError):
            rmq.query(-1, 2)
        with pytest.raises(ValidationError):
            rmq.query(0, 3)

    def test_handles_negative_infinity(self, rmq_implementation):
        values = [float("-inf"), 0.5, float("-inf"), 0.9]
        rmq = make_rmq(values, implementation=rmq_implementation)
        assert rmq.query(0, 3) == 3
        assert rmq.query(0, 2) == 1
        assert rmq.query_value(2, 2) == float("-inf")

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_numpy_argmax(self, seed, rmq_implementation):
        rng = np.random.default_rng(seed)
        values = rng.random(rng.integers(1, 200))
        rmq = make_rmq(values, implementation=rmq_implementation)
        python_rng = random.Random(seed)
        for _ in range(50):
            left = python_rng.randint(0, len(values) - 1)
            right = python_rng.randint(left, len(values) - 1)
            assert values[rmq.query(left, right)] == pytest.approx(
                values[left : right + 1].max()
            )

    @pytest.mark.parametrize("block_size", [1, 2, 3, 7, 64])
    def test_block_sizes(self, block_size):
        rng = np.random.default_rng(block_size)
        values = rng.random(97)
        rmq = BlockRMQ(values, block_size=block_size)
        for left, right in [(0, 96), (5, 5), (10, 40), (90, 96), (0, 1)]:
            assert values[rmq.query(left, right)] == pytest.approx(
                values[left : right + 1].max()
            )


class TestMetadata:
    def test_values_view_read_only(self):
        rmq = SparseTableRMQ([1.0, 2.0])
        with pytest.raises(ValueError):
            rmq.values[0] = 5.0

    def test_len(self, rmq_implementation):
        assert len(make_rmq([1.0, 2.0, 3.0], implementation=rmq_implementation)) == 3

    def test_nbytes_block_smaller_than_sparse_for_large_arrays(self):
        values = np.random.default_rng(0).random(4096)
        assert BlockRMQ(values).nbytes() < SparseTableRMQ(values).nbytes()
