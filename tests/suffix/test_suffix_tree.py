"""Tests for repro.suffix.suffix_tree (compact suffix tree from SA + LCP)."""

import random

import pytest

from repro.exceptions import ValidationError
from repro.suffix.suffix_array import SuffixArray
from repro.suffix.suffix_tree import SuffixTree


@pytest.fixture
def banana_tree() -> SuffixTree:
    return SuffixTree(SuffixArray("banana"))


class TestStructure:
    def test_leaf_count(self, banana_tree):
        assert banana_tree.leaf_count == 6
        assert banana_tree.node_count >= 6

    def test_root_covers_everything(self, banana_tree):
        assert banana_tree.node_depth(banana_tree.root) == 0
        assert banana_tree.node_range(banana_tree.root) == (0, 5)
        assert banana_tree.node_parent(banana_tree.root) == -1

    def test_leaf_depths_are_suffix_lengths(self, banana_tree):
        sa = banana_tree.suffix_array.array
        for rank in range(banana_tree.leaf_count):
            assert banana_tree.node_depth(rank) == 6 - int(sa[rank])
            assert banana_tree.is_leaf(rank)
            # A leaf's range starts at its own rank; when the suffix is a
            # prefix of later suffixes (no unique terminator in "banana"),
            # the leaf doubles as the implicit internal node covering them.
            left, right = banana_tree.node_range(rank)
            assert left == rank
            assert right >= rank

    def test_parent_ranges_contain_children(self, banana_tree):
        for node in range(banana_tree.node_count):
            parent = banana_tree.node_parent(node)
            if parent == -1:
                continue
            parent_left, parent_right = banana_tree.node_range(parent)
            left, right = banana_tree.node_range(node)
            assert parent_left <= left <= right <= parent_right
            assert banana_tree.node_depth(parent) < banana_tree.node_depth(node)

    def test_children_adjacency_consistent_with_parents(self, banana_tree):
        children = banana_tree.children()
        for parent, child_list in enumerate(children):
            for child in child_list:
                assert banana_tree.node_parent(child) == parent

    def test_path_label(self, banana_tree):
        locus = banana_tree.locus("ana")
        assert banana_tree.path_label(locus).startswith("ana")

    def test_lcp_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            SuffixTree(SuffixArray("abc"), lcp=[0, 0])

    def test_subtree_size_and_leaves(self, banana_tree):
        locus = banana_tree.locus("ana")
        assert banana_tree.subtree_size(locus) == 2
        assert list(banana_tree.leaves(locus)) == [1, 2]

    def test_ancestors_end_at_root(self, banana_tree):
        ancestors = list(banana_tree.ancestors(0))
        assert ancestors[-1] == banana_tree.root


class TestPatternQueries:
    def test_pattern_range_matches_search(self, banana_tree):
        assert banana_tree.pattern_range("ana") == (1, 2)
        assert banana_tree.pattern_range("zzz") is None

    def test_locus_properties(self, banana_tree):
        locus = banana_tree.locus("an")
        assert banana_tree.node_depth(locus) >= 2
        assert banana_tree.node_range(locus) == banana_tree.pattern_range("an")
        parent = banana_tree.node_parent(locus)
        assert banana_tree.node_depth(parent) < 2

    def test_locus_of_absent_pattern(self, banana_tree):
        assert banana_tree.locus("xyz") is None

    @pytest.mark.parametrize("seed", range(10))
    def test_locus_on_random_strings(self, seed):
        rng = random.Random(seed)
        text = "".join(rng.choice("abc") for _ in range(rng.randint(5, 80)))
        tree = SuffixTree(SuffixArray(text))
        for _ in range(10):
            length = rng.randint(1, 4)
            start = rng.randint(0, len(text) - length)
            pattern = text[start : start + length]
            locus = tree.locus(pattern)
            assert locus is not None
            assert tree.node_range(locus) == tree.pattern_range(pattern)
            assert tree.node_depth(locus) >= length
            parent = tree.node_parent(locus)
            assert parent == -1 or tree.node_depth(parent) < length


class TestLowestCommonAncestor:
    def test_lca_of_identical_leaves(self, banana_tree):
        assert banana_tree.lowest_common_ancestor(2, 2) == 2

    def test_lca_covers_both_leaves(self, banana_tree):
        for a in range(banana_tree.leaf_count):
            for b in range(banana_tree.leaf_count):
                lca = banana_tree.lowest_common_ancestor(a, b)
                left, right = banana_tree.node_range(lca)
                assert left <= a <= right
                assert left <= b <= right

    def test_lca_is_deepest_common_ancestor(self, banana_tree):
        # banana: leaves 1 and 2 are "ana..." suffixes sharing depth-3 node.
        lca = banana_tree.lowest_common_ancestor(1, 2)
        assert banana_tree.node_depth(lca) == 3


class TestDepthPartitions:
    def test_partitions_cover_all_leaves(self, banana_tree):
        for depth in range(1, 7):
            partitions = banana_tree.depth_partitions(depth)
            covered = []
            for left, right in partitions:
                covered.extend(range(left, right + 1))
            assert covered == list(range(banana_tree.leaf_count))

    def test_partitions_split_at_small_lcp(self, banana_tree):
        # At depth 1: a-suffixes (3), banana (1) and na-suffixes (2) group.
        assert banana_tree.depth_partitions(1) == [(0, 2), (3, 3), (4, 5)]

    def test_partitions_at_large_depth_are_singletons(self, banana_tree):
        assert banana_tree.depth_partitions(6) == [(i, i) for i in range(6)]

    def test_invalid_depth_rejected(self, banana_tree):
        with pytest.raises(ValidationError):
            banana_tree.depth_partitions(0)

    def test_partition_members_share_prefix(self):
        rng = random.Random(3)
        text = "".join(rng.choice("ab") for _ in range(60))
        tree = SuffixTree(SuffixArray(text))
        sa = tree.suffix_array.array
        for depth in (1, 2, 3):
            for left, right in tree.depth_partitions(depth):
                prefixes = {
                    text[int(sa[rank]) : int(sa[rank]) + depth]
                    for rank in range(left, right + 1)
                    if int(sa[rank]) + depth <= len(text)
                }
                assert len(prefixes) <= 1
