"""Tests for repro.suffix.suffix_array."""

import random

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.suffix.suffix_array import (
    SuffixArray,
    build_suffix_array,
    inverse_suffix_array,
    naive_suffix_array,
)


class TestBuildSuffixArray:
    def test_banana(self):
        assert build_suffix_array("banana").tolist() == [5, 3, 1, 0, 4, 2]

    def test_single_character(self):
        assert build_suffix_array("x").tolist() == [0]

    def test_repeated_character(self):
        assert build_suffix_array("aaaa").tolist() == [3, 2, 1, 0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            build_suffix_array("")

    def test_non_string_rejected(self):
        with pytest.raises(ValidationError):
            build_suffix_array(123)  # type: ignore[arg-type]

    def test_handles_sentinel_characters(self):
        text = "ab\x01ba\x01"
        assert build_suffix_array(text).tolist() == naive_suffix_array(text)

    def test_mississippi(self):
        text = "mississippi"
        assert build_suffix_array(text).tolist() == naive_suffix_array(text)

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_naive_on_random_strings(self, seed):
        rng = random.Random(seed)
        text = "".join(rng.choice("abc$") for _ in range(rng.randint(1, 200)))
        assert build_suffix_array(text).tolist() == naive_suffix_array(text)

    def test_large_alphabet(self):
        rng = random.Random(1)
        text = "".join(chr(rng.randint(33, 500)) for _ in range(100))
        assert build_suffix_array(text).tolist() == naive_suffix_array(text)


class TestInverseSuffixArray:
    def test_inverse_is_permutation_inverse(self):
        text = "abracadabra"
        suffix_array = build_suffix_array(text)
        rank = inverse_suffix_array(suffix_array)
        for lexicographic_rank, position in enumerate(suffix_array):
            assert rank[position] == lexicographic_rank


class TestSuffixArrayClass:
    def test_accessors(self):
        sa = SuffixArray("banana")
        assert len(sa) == 6
        assert sa[0] == 5
        assert sa.suffix(0) == "a"
        assert sa.suffix(3) == "banana"
        assert sa.text == "banana"

    def test_rank_is_inverse(self):
        sa = SuffixArray("abracadabra")
        assert np.array_equal(sa.rank[sa.array], np.arange(len(sa)))

    def test_prebuilt_array_accepted(self):
        sa = SuffixArray("banana", array=[5, 3, 1, 0, 4, 2])
        assert sa.array.tolist() == [5, 3, 1, 0, 4, 2]

    def test_prebuilt_array_length_mismatch(self):
        with pytest.raises(ValidationError):
            SuffixArray("banana", array=[1, 2])

    def test_empty_text_rejected(self):
        with pytest.raises(ValidationError):
            SuffixArray("")

    def test_nbytes_positive(self):
        assert SuffixArray("banana").nbytes() > 0
