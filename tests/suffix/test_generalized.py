"""Tests for repro.suffix.generalized (document concatenation structures)."""

import pytest

from repro.exceptions import ValidationError
from repro.suffix.generalized import (
    ConcatenatedDocuments,
    DEFAULT_SEPARATOR,
    GeneralizedSuffixStructure,
)


class TestConcatenatedDocuments:
    def test_text_layout(self):
        concatenated = ConcatenatedDocuments(["abc", "de"])
        assert concatenated.text == "abc" + DEFAULT_SEPARATOR + "de" + DEFAULT_SEPARATOR
        assert len(concatenated) == 7
        assert concatenated.document_count == 2
        assert concatenated.document_starts.tolist() == [0, 4]

    def test_document_and_offset_mapping(self):
        concatenated = ConcatenatedDocuments(["abc", "de"])
        assert concatenated.document_of(0) == 0
        assert concatenated.document_of(3) == 0  # separator belongs to d0
        assert concatenated.document_of(4) == 1
        assert concatenated.offset_of(5) == 1
        assert concatenated.is_separator(3)
        assert not concatenated.is_separator(2)

    def test_document_array(self):
        concatenated = ConcatenatedDocuments(["ab", "c"])
        assert concatenated.document_array().tolist() == [0, 0, 0, 1, 1]

    def test_position_out_of_range(self):
        concatenated = ConcatenatedDocuments(["ab"])
        with pytest.raises(ValidationError):
            concatenated.document_of(10)

    def test_empty_document_rejected(self):
        with pytest.raises(ValidationError):
            ConcatenatedDocuments(["ab", ""])

    def test_empty_collection_rejected(self):
        with pytest.raises(ValidationError):
            ConcatenatedDocuments([])

    def test_separator_inside_document_rejected(self):
        with pytest.raises(ValidationError):
            ConcatenatedDocuments(["a" + DEFAULT_SEPARATOR])

    def test_multicharacter_separator_rejected(self):
        with pytest.raises(ValidationError):
            ConcatenatedDocuments(["ab"], separator="##")

    def test_custom_separator(self):
        concatenated = ConcatenatedDocuments(["ab", "cd"], separator="#")
        assert concatenated.text == "ab#cd#"
        assert concatenated.separator == "#"


class TestGeneralizedSuffixStructure:
    def test_documents_containing(self):
        structure = GeneralizedSuffixStructure(["banana", "bandana", "apple"])
        assert structure.documents_containing("ana") == [0, 1]
        assert structure.documents_containing("ppl") == [2]
        assert structure.documents_containing("ban") == [0, 1]
        assert structure.documents_containing("zzz") == []

    def test_pattern_straddling_separator_not_reported(self):
        structure = GeneralizedSuffixStructure(["ab", "ba"])
        # "ab?b" style matches crossing the separator must not surface.
        assert structure.documents_containing("abb") == []

    def test_tree_is_cached(self):
        structure = GeneralizedSuffixStructure(["abc"])
        assert structure.tree is structure.tree

    def test_accessors(self):
        structure = GeneralizedSuffixStructure(["abc", "bcd"])
        assert structure.concatenation.document_count == 2
        assert len(structure.suffix_array.text) == 8
        assert len(structure.lcp) == 8
