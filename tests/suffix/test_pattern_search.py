"""Tests for repro.suffix.pattern_search."""

import random

import pytest

from repro.exceptions import ValidationError
from repro.suffix.pattern_search import (
    count_occurrences,
    occurrence_positions,
    suffix_range,
)
from repro.suffix.suffix_array import build_suffix_array


class TestSuffixRange:
    def test_banana_ana(self):
        text = "banana"
        assert suffix_range(text, build_suffix_array(text), "ana") == (1, 2)

    def test_banana_full_text(self):
        text = "banana"
        assert suffix_range(text, build_suffix_array(text), "banana") == (3, 3)

    def test_absent_pattern(self):
        text = "banana"
        assert suffix_range(text, build_suffix_array(text), "nab") is None
        assert suffix_range(text, build_suffix_array(text), "x") is None

    def test_pattern_longer_than_text(self):
        text = "abc"
        assert suffix_range(text, build_suffix_array(text), "abcd") is None

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValidationError):
            suffix_range("abc", build_suffix_array("abc"), "")

    def test_empty_text_rejected(self):
        with pytest.raises(ValidationError):
            suffix_range("", [], "a")

    @pytest.mark.parametrize("seed", range(20))
    def test_range_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        text = "".join(rng.choice("ab") for _ in range(rng.randint(5, 120)))
        suffix_array = build_suffix_array(text)
        length = rng.randint(1, 5)
        start = rng.randint(0, len(text) - length)
        pattern = text[start : start + length]
        interval = suffix_range(text, suffix_array, pattern)
        assert interval is not None
        sp, ep = interval
        positions = sorted(int(suffix_array[j]) for j in range(sp, ep + 1))
        expected = [
            j for j in range(len(text) - length + 1) if text[j : j + length] == pattern
        ]
        assert positions == expected


class TestDerivedHelpers:
    def test_count_occurrences(self):
        text = "abracadabra"
        suffix_array = build_suffix_array(text)
        assert count_occurrences(text, suffix_array, "abra") == 2
        assert count_occurrences(text, suffix_array, "zzz") == 0

    def test_occurrence_positions_sorted(self):
        text = "abracadabra"
        suffix_array = build_suffix_array(text)
        assert occurrence_positions(text, suffix_array, "abra").tolist() == [0, 7]
        assert occurrence_positions(text, suffix_array, "zzz").tolist() == []
