"""Tests for repro.suffix.lcp."""

import random

import pytest

from repro.exceptions import ValidationError
from repro.suffix.lcp import LCPArray, build_lcp_array, naive_lcp_array
from repro.suffix.suffix_array import SuffixArray, build_suffix_array


class TestBuildLcpArray:
    def test_banana(self):
        text = "banana"
        lcp = build_lcp_array(text, build_suffix_array(text))
        assert lcp.tolist() == [0, 1, 3, 0, 0, 2]

    def test_all_equal_characters(self):
        text = "aaaa"
        lcp = build_lcp_array(text, build_suffix_array(text))
        assert lcp.tolist() == [0, 1, 2, 3]

    def test_single_character(self):
        assert build_lcp_array("z", build_suffix_array("z")).tolist() == [0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            build_lcp_array("", [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            build_lcp_array("abc", [0, 1])

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_naive_on_random_strings(self, seed):
        rng = random.Random(seed)
        text = "".join(rng.choice("ab\x01") for _ in range(rng.randint(1, 150)))
        suffix_array = build_suffix_array(text)
        assert build_lcp_array(text, suffix_array).tolist() == naive_lcp_array(
            text, suffix_array.tolist()
        )

    def test_first_entry_always_zero(self):
        for text in ("abc", "zzz", "abab"):
            assert build_lcp_array(text, build_suffix_array(text))[0] == 0


class TestLcpArrayClass:
    def test_wraps_suffix_array(self):
        sa = SuffixArray("banana")
        lcp = LCPArray(sa)
        assert len(lcp) == 6
        assert lcp[2] == 3
        assert lcp.suffix_array is sa
        assert lcp.nbytes() > 0

    def test_values_match_function(self):
        sa = SuffixArray("mississippi")
        assert LCPArray(sa).values.tolist() == build_lcp_array(
            "mississippi", sa.array
        ).tolist()
