"""Baseline round-trip: suppression by fingerprint, stale-entry expiry."""

import json
from pathlib import Path

import pytest

from repro.tools.check import Finding, run_checks
from repro.tools.check.baseline import apply_baseline, load_baseline, write_baseline

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"


@pytest.fixture(scope="module")
def findings():
    return run_checks(VIOLATIONS, package="violations")


def test_fingerprints_are_stable_and_line_independent():
    a = Finding(path="x.py", line=10, rule="r", message="m")
    b = Finding(path="x.py", line=99, rule="r", message="m")
    c = Finding(path="x.py", line=10, rule="r", message="other")
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_roundtrip_suppresses_everything(tmp_path, findings):
    assert findings, "violations fixture must produce findings"
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    table = load_baseline(path)
    active, suppressed, stale = apply_baseline(findings, table)
    assert active == []
    assert len(suppressed) == len(findings)
    assert stale == []


def test_partial_baseline_keeps_remaining_findings_active(tmp_path, findings):
    path = tmp_path / "baseline.json"
    write_baseline(path, findings[:2])
    active, suppressed, stale = apply_baseline(findings, load_baseline(path))
    assert len(suppressed) == 2
    assert len(active) == len(findings) - 2
    assert stale == []


def test_stale_entries_are_reported(tmp_path, findings):
    path = tmp_path / "baseline.json"
    gone = Finding(path="removed.py", line=1, rule="lock-discipline", message="old")
    write_baseline(path, list(findings) + [gone])
    active, suppressed, stale = apply_baseline(findings, load_baseline(path))
    assert active == []
    assert len(suppressed) == len(findings)
    assert stale == [gone.fingerprint()]


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"nope": True}), encoding="utf-8")
    with pytest.raises(ValueError, match="missing 'suppressions'"):
        load_baseline(path)
    path.write_text(json.dumps({"suppressions": [1, 2]}), encoding="utf-8")
    with pytest.raises(ValueError, match="must be an object"):
        load_baseline(path)
