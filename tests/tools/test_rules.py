"""Each rule fires on its seeded fixture violation — at the right file and
line — and stays silent on the clean fixture tree and on the real repo."""

from pathlib import Path

import pytest

import repro
from repro.tools.check import run_checks
from repro.tools.check.rules import ALL_RULES, get_rules, rule_names

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"
CLEAN = FIXTURES / "clean"


def line_of(root, relpath, needle):
    """1-based line of the first fixture line containing ``needle``."""
    source = (root / relpath).read_text(encoding="utf-8")
    for number, text in enumerate(source.splitlines(), start=1):
        if needle in text:
            return number
    raise AssertionError(f"{relpath}: no line contains {needle!r}")


def findings_for(rule, root, package):
    return run_checks(root, rule_names=[rule], package=package)


def locations(findings):
    return {(finding.path, finding.line) for finding in findings}


# ---------------------------------------------------------------------------
# payload-schema
# ---------------------------------------------------------------------------
class TestPayloadSchema:
    def test_violations(self):
        findings = findings_for("payload-schema", VIOLATIONS, "violations")
        where = locations(findings)
        assert (
            "indexes.py",
            line_of(VIOLATIONS, "indexes.py", "# duplicate owner"),
        ) in where
        assert (
            "indexes.py",
            line_of(VIOLATIONS, "indexes.py", "# unregistered schema"),
        ) in where
        registry_line = line_of(VIOLATIONS, "payload.py", "SCHEMA_REGISTRY = {")
        kinds_line = line_of(VIOLATIONS, "payload.py", "_KIND_BY_CLASS = {")
        messages = {finding.message for finding in findings}
        assert ("payload.py", registry_line) in where
        assert ("payload.py", kinds_line) in where
        assert any("index/ghost" in message and "neither constructed" in message
                   for message in messages)
        assert any("'legacy'" in message for message in messages)
        assert any("no persistence kind entry" in message for message in messages)

    def test_missing_registry_is_a_finding(self, tmp_path):
        (tmp_path / "mod.py").write_text("X = 1\n", encoding="utf-8")
        findings = findings_for("payload-schema", tmp_path, "tmp")
        assert [finding.message for finding in findings] == [
            "no module defines SCHEMA_REGISTRY (central schema registry)"
        ]

    def test_clean(self):
        assert findings_for("payload-schema", CLEAN, "clean") == []


# ---------------------------------------------------------------------------
# worker-boundary
# ---------------------------------------------------------------------------
class TestWorkerBoundary:
    def test_violations(self):
        findings = findings_for("worker-boundary", VIOLATIONS, "violations")
        where = locations(findings)
        pool = "api/pool.py"
        assert (pool, line_of(VIOLATIONS, pool, "# lambda across boundary")) in where
        assert (pool, line_of(VIOLATIONS, pool, "# bound method submitted")) in where
        assert (pool, line_of(VIOLATIONS, pool, "# live attribute shipped")) in where
        assert (pool, line_of(VIOLATIONS, pool, "# live object shipped")) in where
        assert (
            pool,
            line_of(VIOLATIONS, pool, "# live export table shipped"),
        ) in where
        assert (pool, line_of(VIOLATIONS, pool, "# live shm export shipped")) in where

    def test_clean(self):
        # Includes the shared-memory shape: export_for_index(...).spec()
        # in initargs is whitelisted converter output, not a live object.
        assert findings_for("worker-boundary", CLEAN, "clean") == []


# ---------------------------------------------------------------------------
# exception-taxonomy
# ---------------------------------------------------------------------------
class TestExceptionTaxonomy:
    def test_violations(self):
        findings = findings_for("exception-taxonomy", VIOLATIONS, "violations")
        raises = "api/raises.py"
        serving = "serving/http.py"
        faults = "faults/injector.py"
        assert locations(findings) == {
            (raises, line_of(VIOLATIONS, raises, "# outside the taxonomy")),
            (raises, line_of(VIOLATIONS, raises, "missing {key}")),
            (serving, line_of(VIOLATIONS, serving, "serving raise outside")),
            (faults, line_of(VIOLATIONS, faults, "faults raise outside")),
        }

    def test_taxonomy_and_builtin_raises_allowed(self):
        assert findings_for("exception-taxonomy", CLEAN, "clean") == []

    def test_out_of_scope_modules_ignored(self):
        findings = findings_for("exception-taxonomy", VIOLATIONS, "violations")
        # indexes.py raises ValueError at module scope outside api/, serving/
        # and faults/ — the rule only patrols the façade directories.
        assert all(
            finding.path.startswith(("api/", "serving/", "faults/"))
            for finding in findings
        )


# ---------------------------------------------------------------------------
# hot-path-purity
# ---------------------------------------------------------------------------
class TestHotPathPurity:
    def test_violations(self):
        findings = findings_for("hot-path-purity", VIOLATIONS, "violations")
        loop_line = line_of(VIOLATIONS, "hot.py", "math-in-loop AND append-in-for")
        index_line = line_of(VIOLATIONS, "hot.py", "# index iteration")
        where = locations(findings)
        assert ("hot.py", loop_line) in where
        assert ("hot.py", index_line) in where
        assert len(findings) == 3  # math-in-loop, append-in-for, range(len)

    def test_scalar_reference_exempt(self):
        findings = findings_for("hot-path-purity", VIOLATIONS, "violations")
        scalar_line = line_of(VIOLATIONS, "hot.py", "return [math.exp(value)")
        assert all(finding.line != scalar_line for finding in findings)

    def test_clean_including_pragma_and_while_chunking(self):
        assert findings_for("hot-path-purity", CLEAN, "clean") == []

    def test_unmarked_module_ignored(self, tmp_path):
        (tmp_path / "cold.py").write_text(
            "import math\n"
            "def f(xs):\n"
            "    out = []\n"
            "    for x in xs:\n"
            "        out.append(math.exp(x))\n"
            "    return out\n",
            encoding="utf-8",
        )
        assert findings_for("hot-path-purity", tmp_path, "tmp") == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------
class TestLockDiscipline:
    def test_violations(self):
        findings = findings_for("lock-discipline", VIOLATIONS, "violations")
        locks = "locks.py"
        assert locations(findings) == {
            (locks, line_of(VIOLATIONS, locks, "mutated without the lock")),
            (locks, line_of(VIOLATIONS, locks, "# mutating call without the lock")),
            (locks, line_of(VIOLATIONS, locks, "# rebind without the lock")),
            (locks, line_of(VIOLATIONS, locks, "foreign receiver")),
        }

    def test_clean(self):
        assert findings_for("lock-discipline", CLEAN, "clean") == []


# ---------------------------------------------------------------------------
# metrics-discipline
# ---------------------------------------------------------------------------
class TestMetricsDiscipline:
    def test_violations(self):
        findings = findings_for("metrics-discipline", VIOLATIONS, "violations")
        metrics = "metrics.py"
        assert locations(findings) == {
            (metrics, line_of(VIOLATIONS, metrics, "# not snake_case")),
            (metrics, line_of(VIOLATIONS, metrics, "# counter without _total")),
            (metrics, line_of(VIOLATIONS, metrics, "# gauge without unit suffix")),
            (metrics, line_of(VIOLATIONS, metrics, "# histogram without unit suffix")),
            (metrics, line_of(VIOLATIONS, metrics, "# unregistered metric")),
            (metrics, line_of(VIOLATIONS, metrics, "METRIC_TABLE = {")),
        }
        messages = {finding.message for finding in findings}
        assert any(
            "'ghost_metric_total'" in message and "never created" in message
            for message in messages
        )
        assert any(
            "'rogue_total'" in message and "not registered" in message
            for message in messages
        )

    def test_missing_table_is_a_finding(self, tmp_path):
        (tmp_path / "mod.py").write_text("X = 1\n", encoding="utf-8")
        findings = findings_for("metrics-discipline", tmp_path, "tmp")
        assert [finding.message for finding in findings] == [
            "no module defines METRIC_TABLE (central metric-name table)"
        ]

    def test_clean_including_constant_indirection(self):
        assert findings_for("metrics-discipline", CLEAN, "clean") == []


# ---------------------------------------------------------------------------
# framework behaviour
# ---------------------------------------------------------------------------
class TestFramework:
    def test_repo_is_clean(self):
        root = Path(repro.__file__).resolve().parent
        assert run_checks(root, package="repro") == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_rule_selection(self):
        selected = get_rules(["lock-discipline"])
        assert [rule.name for rule in selected] == ["lock-discipline"]
        assert len(get_rules(None)) == len(ALL_RULES) == len(rule_names()) == 6

    def test_syntax_errors_reported_as_findings(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        findings = run_checks(tmp_path, package="tmp", rule_names=["lock-discipline"])
        assert [finding.rule for finding in findings] == ["parse"]
        assert findings[0].path == "broken.py"

    def test_findings_sorted_and_rendered(self):
        findings = run_checks(VIOLATIONS, package="violations")
        assert findings == sorted(findings)
        rendered = findings[0].render()
        assert findings[0].path in rendered and findings[0].rule in rendered
