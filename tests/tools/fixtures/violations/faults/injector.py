"""Fixture: a ``faults`` module raising outside the exception taxonomy."""

from exceptions import InjectedFaultError


def fire(site):
    if not site:
        raise ValueError("site must be non-empty")  # builtin validation: allowed
    if site == "bad":
        raise RuntimeError("faults raise outside the taxonomy")
    raise InjectedFaultError(f"injected at {site}")
