"""Fixture: guarded-by annotated state mutated without its lock."""

import threading

_state = {}  # guarded-by: _state_lock
_state_lock = threading.Lock()


def touch(key):
    _state[key] = 1  # module global mutated without the lock


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock
        self._count = 0  # guarded-by: event-loop

    def good(self, item):
        with self._lock:
            self._items.append(item)

    def bad(self, item):
        self._items.append(item)  # mutating call without the lock
        self._items = [item]  # rebind without the lock


def poke(box):
    box._count += 1  # event-loop state mutated through a foreign receiver
