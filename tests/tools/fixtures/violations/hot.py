# repro-check: hot-path
"""Fixture: per-element Python work in a module marked hot."""

import math


def slow(values):
    out = []
    for value in values:
        out.append(math.exp(value))  # math-in-loop AND append-in-for
    for i in range(len(values)):  # index iteration
        out[i] += 0.0
    return out


def slow_scalar(values):
    # Reference implementation: exempt by the *_scalar naming convention.
    return [math.exp(value) for value in values]
