"""Fixture: duplicate index-schema owners and an unregistered schema."""

SPECIAL_SCHEMA = "index/special"


class IndexPayload:
    def __init__(self, schema, arrays=None):
        self.schema = schema
        self.arrays = arrays or {}


class SpecialIndex:
    def to_payload(self):
        return IndexPayload(schema=SPECIAL_SCHEMA)


class ImpostorIndex:
    def to_payload(self):
        return IndexPayload(schema=SPECIAL_SCHEMA)  # duplicate owner


class RogueIndex:
    def to_payload(self):
        return IndexPayload(schema="index/rogue")  # unregistered schema
