"""Fixture: serving modules sit inside the taxonomy rule's scope too."""


def respond(status):
    if status >= 500:
        raise RuntimeError("backend unavailable")  # serving raise outside the taxonomy
    return status
