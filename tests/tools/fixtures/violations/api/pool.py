"""Fixture: process-pool submissions shipping live objects."""

from concurrent.futures import ProcessPoolExecutor


class ShardedThing:
    def go(self, engine, plans):
        with ProcessPoolExecutor() as pool:
            pool.submit(lambda: engine.query(plans))  # lambda across boundary
            pool.submit(engine.query, plans)  # bound method submitted
            pool.submit(query_worker, self._engines)  # live attribute shipped
            pool.submit(query_worker, engine)  # live object shipped
            pool.submit(query_worker, self._shm_exports)  # live export table shipped
            pool.submit(query_worker, export)  # live shm export shipped


def query_worker(args):
    return args
