"""Fixture: raises outside the exception taxonomy."""

from ...exceptions import ValidationError


def validate(value):
    if value is None:
        raise ValidationError("value is required")  # taxonomy: allowed
    raise RuntimeError("unexpected state")  # outside the taxonomy


def lookup(table, key):
    try:
        return table[key]
    except KeyError as exc:
        raise LookupError(f"missing {key}") from exc  # outside the taxonomy
