"""Fixture: schema registry with a dead entry and a mismatched kind table."""

SCHEMA_REGISTRY = {
    "index/special": "the special index",
    "index/ghost": "registered but never constructed or dispatched",
}

_KIND_BY_CLASS = {"SpecialIndex": "special", "LegacyIndex": "legacy"}
