"""Metrics-discipline violations: one seeded breach per rule clause."""

METRIC_TABLE = {
    "CamelCase_total": "Registered but not snake_case.",
    "events": "Registered counter missing the _total suffix.",
    "pressure_gauge": "Registered gauge without a unit suffix.",
    "spread": "Registered histogram without a unit suffix.",
    "ghost_metric_total": "Registered but never created anywhere.",
}


def build(registry):
    registry.counter("CamelCase_total")  # not snake_case
    registry.counter("events")  # counter without _total
    registry.gauge("pressure_gauge")  # gauge without unit suffix
    registry.histogram("spread")  # histogram without unit suffix
    registry.counter("rogue_total")  # unregistered metric
