"""Fixture: clean pool usage and taxonomy-conforming raises."""

from concurrent.futures import ProcessPoolExecutor

from ..exceptions import ValidationError


def initialize_worker(specs):
    return specs


def query_worker(plan):
    return plan


def build_pool(specs):
    return ProcessPoolExecutor(
        max_workers=1, initializer=initialize_worker, initargs=(specs,)
    )


def run(plans):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(query_worker, plan) for plan in plans]
    return [future.result() for future in futures]


def export_for_index(index):
    return index


def start_shm_pool(self):
    # Shared-memory boundary: a spec() tuple (block name + layout) is
    # plain data even when derived from live engine state.
    return ProcessPoolExecutor(
        max_workers=1,
        initializer=initialize_worker,
        initargs=({0: export_for_index(self._engines[0].index).spec()},),
    )


def validate(value):
    if value is None:
        raise ValidationError("value is required")
    if not isinstance(value, int):
        raise TypeError(f"expected int, got {type(value).__name__}")
    return value
