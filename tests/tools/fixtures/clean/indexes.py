"""Fixture: one owner per index schema, dispatch covers the registry."""

SPECIAL_SCHEMA = "index/special"


class IndexPayload:
    def __init__(self, schema, arrays=None):
        self.schema = schema
        self.arrays = arrays or {}


class SpecialIndex:
    def to_payload(self):
        return IndexPayload(schema=SPECIAL_SCHEMA)


def from_payload(payload):
    if payload.schema == SPECIAL_SCHEMA:
        return SpecialIndex()
    raise ValueError(payload.schema)
