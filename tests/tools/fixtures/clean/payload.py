"""Fixture: a consistent schema registry and kind table."""

SCHEMA_REGISTRY = {
    "index/special": "the one index variant",
}

_KIND_BY_CLASS = {"SpecialIndex": "special"}
