"""Clean metrics fixture: every name registered, snake_case, unit-suffixed."""

METRIC_TABLE = {
    "requests_total": "Requests accepted by the façade.",
    "queue_depth_count": "Requests waiting for a batch window.",
    "latency_ms": "End-to-end request latency.",
}

LATENCY_METRIC = "latency_ms"


def build(registry):
    requests = registry.counter("requests_total")
    depth = registry.gauge("queue_depth_count")
    latency = registry.histogram(LATENCY_METRIC)
    return requests, depth, latency
