"""Fixture: guarded-by annotated state mutated only under its lock."""

import threading

_counters = {}  # guarded-by: _counters_lock
_counters_lock = threading.Lock()


def bump(name):
    with _counters_lock:
        _counters[name] = _counters.get(name, 0) + 1


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock
        self._pending = 0  # guarded-by: event-loop

    def push(self, item):
        with self._lock:
            self._items.append(item)

    def drain(self):
        with self._lock:
            items, self._items = self._items, []
        return items

    def note(self):
        self._pending += 1  # owner-class mutation of event-loop state
