# repro-check: hot-path
"""Fixture: vectorized hot module with sanctioned escapes."""

import math

import numpy as np


def probabilities(log_values):
    return np.exp(np.asarray(log_values, dtype=np.float64))


def probabilities_scalar(log_values):
    # Reference implementation: exempt by the *_scalar naming convention.
    out = []
    for value in log_values:
        out.append(math.exp(value))
    return out


def boundary(values):  # repro-check: allow(hot-path-purity)
    return [math.exp(value) for value in values]


def chunked(values, size):
    # while-loop chunking iterates blocks, not elements — allowed.
    chunks = []
    start = 0
    while start < len(values):
        chunks.append(values[start : start + size])
        start += size
    return chunks
