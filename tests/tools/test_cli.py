"""Command-line behaviour: exit codes, formats, baseline flow, module entry."""

import json
import runpy
import sys
from pathlib import Path

import pytest

from repro.tools.check.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"
CLEAN = FIXTURES / "clean"


def run_cli(*argv):
    return main(list(argv))


def test_clean_tree_exits_zero(capsys):
    assert run_cli("--root", str(CLEAN), "--package", "clean") == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_violations_exit_one_with_locations(capsys):
    assert run_cli("--root", str(VIOLATIONS), "--package", "violations") == 1
    out = capsys.readouterr().out
    assert "locks.py:" in out and "[lock-discipline]" in out
    assert "hot.py:" in out and "[hot-path-purity]" in out


def test_installed_package_default_root_is_clean():
    # The shipped repro package must satisfy its own rules with no baseline.
    assert run_cli() == 0


def test_rule_selection_and_unknown_rule(capsys):
    assert run_cli("--root", str(VIOLATIONS), "--package", "violations",
                   "--rule", "payload-schema") == 1
    out = capsys.readouterr().out
    assert "[payload-schema]" in out
    assert "[lock-discipline]" not in out
    assert run_cli("--rule", "bogus") == 2
    assert "unknown rule" in capsys.readouterr().err


def test_bad_root_exits_two(tmp_path, capsys):
    assert run_cli("--root", str(tmp_path / "missing")) == 2
    assert "not a directory" in capsys.readouterr().err


def test_json_format(capsys):
    assert run_cli("--root", str(VIOLATIONS), "--package", "violations",
                   "--format", "json") == 1
    document = json.loads(capsys.readouterr().out)
    assert document["stale_baseline_entries"] == []
    assert document["findings"], "expected findings in JSON output"
    first = document["findings"][0]
    assert set(first) == {"path", "line", "rule", "message", "fingerprint"}


def test_list_rules(capsys):
    assert run_cli("--list-rules") == 0
    out = capsys.readouterr().out
    assert "payload-schema" in out and "lock-discipline" in out


def test_baseline_flow(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # Write a full baseline, then the same scan is clean against it.
    assert run_cli("--root", str(VIOLATIONS), "--package", "violations",
                   "--write-baseline", str(baseline)) == 0
    capsys.readouterr()
    assert run_cli("--root", str(VIOLATIONS), "--package", "violations",
                   "--baseline", str(baseline)) == 0
    assert "suppressed" in capsys.readouterr().out


def test_stale_baseline_entry_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    table = {"version": 1, "suppressions": {"deadbeefdead": {"rule": "x"}}}
    baseline.write_text(json.dumps(table), encoding="utf-8")
    assert run_cli("--root", str(CLEAN), "--package", "clean",
                   "--baseline", str(baseline)) == 1
    assert "stale suppression" in capsys.readouterr().out


def test_unreadable_baseline_exits_two(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json", encoding="utf-8")
    assert run_cli("--root", str(CLEAN), "--package", "clean",
                   "--baseline", str(baseline)) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_module_entry_point(monkeypatch, capsys):
    # ``python -m repro.tools.check`` — exercised in-process for coverage.
    monkeypatch.setattr(sys, "argv",
                        ["check", "--root", str(CLEAN), "--package", "clean"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro.tools.check", run_name="__main__")
    assert excinfo.value.code == 0
