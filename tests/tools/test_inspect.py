"""The archive inspector CLI: schema tree, compact notes, legacy fallback."""

import runpy
import sys

import pytest

from repro.api import build_index
from repro.tools.inspect import main
from tests.conftest import make_random_special_string, make_random_uncertain_string


@pytest.fixture
def special_engine():
    return build_index(make_random_special_string(60, seed=5))


def test_v3_report_shows_schema_arrays_and_checksums(tmp_path, capsys, special_engine):
    path = special_engine.save(tmp_path / "plain")
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "format version 3, kind 'special'" in out
    assert "index/special" in out and "rmq/sparse" in out
    assert "suffix_array" in out and "block_positions" in out
    assert "crc32 0x" in out
    assert "stored total:" in out


def test_compact_archive_notes_transformed_dtypes(tmp_path, capsys, special_engine):
    path = special_engine.save(tmp_path / "compact", compact=True)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "[narrowed from int64]" in out
    assert "uint8" in out


def test_legacy_archive_falls_back_to_member_table(tmp_path, capsys):
    engine = build_index(make_random_uncertain_string(20, 0.3, seed=6), tau_min=0.1)
    path = engine.save(tmp_path / "legacy", version=1)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "legacy archive" in out
    assert "config keys:" in out


def test_multiple_archives_and_error_status(tmp_path, capsys, special_engine):
    good = special_engine.save(tmp_path / "good")
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"not a zip archive")
    assert main([str(good), str(garbage)]) == 1
    captured = capsys.readouterr()
    assert "format version 3" in captured.out
    assert "garbage" in captured.err


def test_missing_archive_reports_error(tmp_path, capsys):
    assert main([str(tmp_path / "absent")]) == 1
    assert "absent" in capsys.readouterr().err


@pytest.mark.filterwarnings("ignore:.*found in sys.modules.*:RuntimeWarning")
def test_module_entry_point(tmp_path, monkeypatch, capsys, special_engine):
    # runpy warns because the module is already imported above; harmless here.
    path = special_engine.save(tmp_path / "module")
    monkeypatch.setattr(sys, "argv", ["inspect", str(path)])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro.tools.inspect", run_name="__main__")
    assert excinfo.value.code == 0
    assert "stored total:" in capsys.readouterr().out
