"""Tests for repro.datasets.protein."""

import pytest

from repro.datasets.protein import (
    PROTEIN_FREQUENCIES,
    generate_protein_sequence,
    protein_frequency_vector,
    split_into_fragments,
)
from repro.exceptions import ValidationError
from repro.strings.alphabet import PROTEIN_SYMBOLS


class TestFrequencyVector:
    def test_normalized(self):
        vector = protein_frequency_vector()
        assert vector.sum() == pytest.approx(1.0)
        assert len(vector) == len(PROTEIN_SYMBOLS)

    def test_all_symbols_have_entries(self):
        assert set(PROTEIN_FREQUENCIES) == set(PROTEIN_SYMBOLS)


class TestGenerateProteinSequence:
    def test_length_and_alphabet(self):
        sequence = generate_protein_sequence(500, seed=1)
        assert len(sequence) == 500
        assert set(sequence) <= set(PROTEIN_SYMBOLS)

    def test_reproducible_with_seed(self):
        assert generate_protein_sequence(200, seed=5) == generate_protein_sequence(
            200, seed=5
        )

    def test_different_seeds_differ(self):
        assert generate_protein_sequence(200, seed=1) != generate_protein_sequence(
            200, seed=2
        )

    def test_contains_repeats(self):
        # Repeated motifs should make some 8-mers occur more than once.
        sequence = generate_protein_sequence(3000, seed=3, repeat_probability=0.3)
        kmers = [sequence[i : i + 8] for i in range(len(sequence) - 8)]
        assert len(set(kmers)) < len(kmers)

    def test_invalid_length(self):
        with pytest.raises(ValidationError):
            generate_protein_sequence(0)

    def test_invalid_repeat_range(self):
        with pytest.raises(ValidationError):
            generate_protein_sequence(10, repeat_length_range=(5, 2))

    def test_frequencies_roughly_followed(self):
        sequence = generate_protein_sequence(20000, seed=11, repeat_probability=0.0)
        leucine_share = sequence.count("L") / len(sequence)
        tryptophan_share = sequence.count("W") / len(sequence)
        assert leucine_share > tryptophan_share


class TestSplitIntoFragments:
    def test_fragments_cover_sequence(self):
        sequence = generate_protein_sequence(1000, seed=7)
        fragments = split_into_fragments(sequence, seed=7)
        assert "".join(fragments) == sequence

    def test_fragment_length_bounds(self):
        sequence = generate_protein_sequence(2000, seed=8)
        fragments = split_into_fragments(sequence, seed=8)
        # All but possibly the last (which may have absorbed a short tail)
        # fall within [20, 45]; none may be shorter than 20 except the final
        # fragment when the sequence ends early.
        for fragment in fragments[:-1]:
            assert 20 <= len(fragment) <= 45 + 45
        assert all(len(fragment) >= 1 for fragment in fragments)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValidationError):
            split_into_fragments("")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            split_into_fragments("abc", min_length=10, max_length=5)
