"""Tests for repro.datasets.queries (query workload generation)."""

import pytest

from repro.datasets.queries import (
    QueryWorkload,
    extract_collection_patterns,
    extract_patterns,
    threshold_grid,
    workload,
)
from repro.datasets.synthetic import generate_collection, generate_uncertain_string
from repro.exceptions import ValidationError


class TestExtractPatterns:
    def test_lengths_and_counts(self):
        string = generate_uncertain_string(200, theta=0.3, seed=1)
        patterns = extract_patterns(string, [5, 10], per_length=4, seed=2)
        assert len(patterns) == 8
        assert sorted({len(p) for p in patterns}) == [5, 10]

    def test_patterns_come_from_backbone(self):
        string = generate_uncertain_string(100, theta=0.2, seed=3)
        backbone = string.most_likely_string()
        for pattern in extract_patterns(string, [6], per_length=5, seed=4):
            assert pattern in backbone

    def test_too_long_lengths_skipped(self):
        string = generate_uncertain_string(30, theta=0.2, seed=5)
        patterns = extract_patterns(string, [10, 500], per_length=2, seed=6)
        assert {len(p) for p in patterns} == {10}

    def test_all_lengths_unusable_raises(self):
        string = generate_uncertain_string(10, theta=0.2, seed=7)
        with pytest.raises(ValidationError):
            extract_patterns(string, [100], per_length=2, seed=8)

    def test_invalid_per_length(self):
        string = generate_uncertain_string(10, theta=0.2, seed=9)
        with pytest.raises(ValidationError):
            extract_patterns(string, [3], per_length=0)

    def test_invalid_length(self):
        string = generate_uncertain_string(10, theta=0.2, seed=10)
        with pytest.raises(ValidationError):
            extract_patterns(string, [0], per_length=1)

    def test_reproducible(self):
        string = generate_uncertain_string(100, theta=0.3, seed=11)
        assert extract_patterns(string, [5], per_length=3, seed=12) == extract_patterns(
            string, [5], per_length=3, seed=12
        )


class TestExtractCollectionPatterns:
    def test_lengths_respected(self):
        collection = generate_collection(400, theta=0.3, seed=1)
        patterns = extract_collection_patterns(collection, [4, 8], per_length=3, seed=2)
        assert len(patterns) == 6
        assert sorted({len(p) for p in patterns}) == [4, 8]

    def test_patterns_exist_in_some_document(self):
        collection = generate_collection(300, theta=0.2, seed=3)
        backbones = [document.most_likely_string() for document in collection]
        for pattern in extract_collection_patterns(collection, [5], per_length=5, seed=4):
            assert any(pattern in backbone for backbone in backbones)

    def test_unusable_lengths_raise(self):
        collection = generate_collection(200, theta=0.2, seed=5)
        with pytest.raises(ValidationError):
            extract_collection_patterns(collection, [5000], per_length=2, seed=6)

    def test_invalid_length(self):
        collection = generate_collection(200, theta=0.2, seed=7)
        with pytest.raises(ValidationError):
            extract_collection_patterns(collection, [-3], per_length=2)


class TestWorkloadAndThresholds:
    def test_workload_bundle(self):
        bundle = workload(["AB", "CD"], 0.2)
        assert isinstance(bundle, QueryWorkload)
        assert len(bundle) == 2
        assert bundle.tau == pytest.approx(0.2)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValidationError):
            workload([], 0.2)

    def test_threshold_grid(self):
        grid = threshold_grid(0.1, 0.2, 3)
        assert grid == pytest.approx([0.1, 0.15, 0.2])

    def test_threshold_grid_validation(self):
        with pytest.raises(ValidationError):
            threshold_grid(0.0, 0.5, 3)
        with pytest.raises(ValidationError):
            threshold_grid(0.1, 0.05, 3)
        with pytest.raises(ValidationError):
            threshold_grid(0.1, 0.2, 0)
