"""Tests for repro.datasets.synthetic (the Section 8.1 dataset recipe)."""

import pytest

from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_collection,
    generate_uncertain_string,
)
from repro.exceptions import ValidationError
from repro.strings.alphabet import PROTEIN_SYMBOLS


class TestSyntheticConfig:
    def test_defaults(self):
        config = SyntheticConfig()
        assert config.theta == pytest.approx(0.3)
        assert config.average_choices == 5

    def test_invalid_theta(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(theta=1.5)

    def test_invalid_neighborhood(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(neighborhood_size=0)

    def test_invalid_choices(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(average_choices=1)


class TestGenerateUncertainString:
    def test_length_and_theta(self):
        string = generate_uncertain_string(400, theta=0.25, seed=1)
        assert len(string) == 400
        assert string.uncertainty_fraction == pytest.approx(0.25, abs=0.01)

    def test_characters_from_protein_alphabet(self):
        string = generate_uncertain_string(100, theta=0.5, seed=2)
        for distribution in string:
            assert set(distribution.characters) <= set(PROTEIN_SYMBOLS)

    def test_distributions_sum_to_one(self):
        string = generate_uncertain_string(100, theta=0.5, seed=3)
        for distribution in string:
            assert sum(distribution.probabilities) == pytest.approx(1.0)

    def test_uncertain_positions_have_multiple_choices(self):
        string = generate_uncertain_string(300, theta=0.4, seed=4)
        uncertain = [d for d in string if not d.is_certain]
        assert uncertain
        average_choices = sum(len(d) for d in uncertain) / len(uncertain)
        # The paper targets ~5 choices per uncertain position.
        assert 2.0 <= average_choices <= 7.0

    def test_original_character_usually_dominant(self):
        string = generate_uncertain_string(300, theta=0.5, seed=5)
        dominant = sum(1 for d in string if d.most_likely()[1] >= 0.4)
        assert dominant > 200

    def test_reproducible(self):
        a = generate_uncertain_string(50, theta=0.3, seed=6)
        b = generate_uncertain_string(50, theta=0.3, seed=6)
        assert a == b

    def test_theta_zero_is_deterministic(self):
        string = generate_uncertain_string(50, theta=0.0, seed=7)
        assert string.is_deterministic

    def test_base_sequence_respected(self):
        base = "ACDEFGHIKL" * 5
        string = generate_uncertain_string(50, theta=0.2, seed=8, base_sequence=base)
        # Certain positions keep the backbone character.
        for position, distribution in enumerate(string):
            if distribution.is_certain:
                assert distribution.characters[0] == base[position]

    def test_base_sequence_too_short_rejected(self):
        with pytest.raises(ValidationError):
            generate_uncertain_string(50, seed=9, base_sequence="ACD")

    def test_invalid_length_rejected(self):
        with pytest.raises(ValidationError):
            generate_uncertain_string(0)


class TestGenerateCollection:
    def test_total_positions_and_lengths(self):
        collection = generate_collection(600, theta=0.3, seed=1)
        assert collection.total_positions >= 550
        for document in collection:
            assert len(document) >= 20 or document is collection[len(collection) - 1]
            assert len(document) <= 90

    def test_theta_applied_to_documents(self):
        collection = generate_collection(800, theta=0.4, seed=2)
        overall = sum(d.uncertain_position_count for d in collection) / max(
            collection.total_positions, 1
        )
        assert overall == pytest.approx(0.4, abs=0.05)

    def test_reproducible(self):
        a = generate_collection(300, theta=0.2, seed=3)
        b = generate_collection(300, theta=0.2, seed=3)
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_invalid_size_rejected(self):
        with pytest.raises(ValidationError):
            generate_collection(0)
