"""Unit tests for the fault-injection framework itself.

These pin the *mechanics* — spec validation, seeded determinism, ordinal
and budget semantics, crash-hook dispatch, installation lifecycle — in
isolation, so the chaos suite (``tests/faults/test_chaos.py``) can lean on
them and assert only end-to-end serving invariants.
"""

import threading
import time

import pytest

from repro.exceptions import InjectedFaultError, ValidationError, WorkerError
from repro.faults import (
    KINDS,
    SITE_ARCHIVE_LOAD,
    SITE_BATCH_FLUSH,
    SITE_CACHE_ACCESS,
    SITE_WORKER_DISPATCH,
    SITES,
    FaultPlan,
    FaultSpec,
    active_injector,
    fire,
    inject_faults,
)


class TestFaultSpecValidation:
    def test_defaults_are_a_single_certain_error(self):
        spec = FaultSpec(SITE_CACHE_ACCESS)
        assert spec.kind == "error"
        assert spec.probability == 1.0
        assert spec.at is None
        assert spec.times == 1
        assert spec.resolve_error() is InjectedFaultError

    def test_unknown_site_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault site"):
            FaultSpec("no-such-site")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault kind"):
            FaultSpec(SITE_CACHE_ACCESS, kind="explode")

    @pytest.mark.parametrize("probability", [-0.1, 1.1])
    def test_probability_out_of_range_rejected(self, probability):
        with pytest.raises(ValidationError, match="probability"):
            FaultSpec(SITE_CACHE_ACCESS, probability=probability)

    def test_negative_ordinal_rejected(self):
        with pytest.raises(ValidationError, match="non-negative ordinal"):
            FaultSpec(SITE_CACHE_ACCESS, at=-1)

    def test_times_below_one_rejected(self):
        with pytest.raises(ValidationError, match="times"):
            FaultSpec(SITE_CACHE_ACCESS, times=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError, match="delay_s"):
            FaultSpec(SITE_CACHE_ACCESS, kind="delay", delay_s=-0.5)

    def test_error_class_validated_at_construction(self):
        # Misnamed or non-taxonomy classes fail when the spec is built,
        # not at fire time deep inside a serving path.
        with pytest.raises(ValidationError, match="ReproError subclass"):
            FaultSpec(SITE_CACHE_ACCESS, error="NoSuchError")
        with pytest.raises(ValidationError, match="ReproError subclass"):
            FaultSpec(SITE_CACHE_ACCESS, error="ValueError")

    def test_custom_taxonomy_error_resolves(self):
        spec = FaultSpec(SITE_WORKER_DISPATCH, error="WorkerError")
        assert spec.resolve_error() is WorkerError

    def test_sites_and_kinds_exported(self):
        assert SITE_WORKER_DISPATCH in SITES
        assert SITE_ARCHIVE_LOAD in SITES
        assert set(KINDS) == {"error", "delay", "crash"}


class TestFaultPlan:
    def test_specs_canonicalized_to_tuple(self):
        plan = FaultPlan(specs=[FaultSpec(SITE_CACHE_ACCESS)])
        assert isinstance(plan.specs, tuple)
        assert plan.seed == 0

    def test_empty_plan_is_valid(self):
        plan = FaultPlan()
        with inject_faults(plan) as injector:
            fire(SITE_CACHE_ACCESS)
        assert injector.stats() == {"calls": {SITE_CACHE_ACCESS: 1}, "fired": {}}


class TestInstallation:
    def test_fire_is_a_no_op_without_a_plan(self):
        assert active_injector() is None
        fire(SITE_CACHE_ACCESS)  # must not raise, must not record anything

    def test_install_and_uninstall(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_CACHE_ACCESS),))
        with inject_faults(plan) as injector:
            assert active_injector() is injector
            assert injector.plan is plan
        assert active_injector() is None

    def test_uninstalls_when_the_block_raises(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_CACHE_ACCESS),))
        with pytest.raises(InjectedFaultError):
            with inject_faults(plan):
                fire(SITE_CACHE_ACCESS)
        assert active_injector() is None

    def test_nesting_refused(self):
        with inject_faults(FaultPlan()) as outer:
            with pytest.raises(ValidationError, match="already installed"):
                with inject_faults(FaultPlan()):
                    pass  # pragma: no cover - never reached
            # The failed inner install must not evict the outer plan.
            assert active_injector() is outer
        assert active_injector() is None

    def test_unknown_site_rejected_when_installed(self):
        with inject_faults(FaultPlan()):
            with pytest.raises(ValidationError, match="unknown fault site"):
                fire("no-such-site")


class TestTriggerSemantics:
    def test_ordinal_spec_fires_exactly_once_at_its_call(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_CACHE_ACCESS, at=2),))
        with inject_faults(plan) as injector:
            fire(SITE_CACHE_ACCESS)  # ordinal 0
            fire(SITE_CACHE_ACCESS)  # ordinal 1
            with pytest.raises(InjectedFaultError, match="cache-access"):
                fire(SITE_CACHE_ACCESS)  # ordinal 2 — the scheduled one
            fire(SITE_CACHE_ACCESS)  # ordinal 3: spec budget exhausted
        assert injector.stats() == {
            "calls": {SITE_CACHE_ACCESS: 4},
            "fired": {SITE_CACHE_ACCESS: 1},
        }

    def test_times_budget_caps_certain_faults(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_CACHE_ACCESS, times=2),))
        with inject_faults(plan) as injector:
            for _ in range(2):
                with pytest.raises(InjectedFaultError):
                    fire(SITE_CACHE_ACCESS)
            # Retried away: the third and later calls sail through.
            fire(SITE_CACHE_ACCESS)
            fire(SITE_CACHE_ACCESS)
        assert injector.stats()["fired"] == {SITE_CACHE_ACCESS: 2}

    def test_zero_probability_never_fires(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_CACHE_ACCESS, probability=0.0),))
        with inject_faults(plan) as injector:
            for _ in range(20):
                fire(SITE_CACHE_ACCESS)
        assert injector.stats()["fired"] == {}

    def test_seeded_probability_replays_identically(self):
        def trace(seed):
            plan = FaultPlan(
                specs=(
                    FaultSpec(SITE_CACHE_ACCESS, probability=0.5, times=1000),
                ),
                seed=seed,
            )
            pattern = []
            with inject_faults(plan):
                for _ in range(40):
                    try:
                        fire(SITE_CACHE_ACCESS)
                        pattern.append(False)
                    except InjectedFaultError:
                        pattern.append(True)
            return pattern

        first = trace(seed=1234)
        assert any(first) and not all(first)  # the coin actually flips
        assert trace(seed=1234) == first  # same plan → same fault sequence
        assert trace(seed=99) != first  # the seed is what decides

    def test_sites_are_independent_ordinals(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_BATCH_FLUSH, at=0),))
        with inject_faults(plan) as injector:
            fire(SITE_CACHE_ACCESS)  # other sites advance their own counters
            with pytest.raises(InjectedFaultError):
                fire(SITE_BATCH_FLUSH)
        stats = injector.stats()
        assert stats["calls"] == {SITE_CACHE_ACCESS: 1, SITE_BATCH_FLUSH: 1}
        assert stats["fired"] == {SITE_BATCH_FLUSH: 1}

    def test_ordinals_reset_per_installation(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_CACHE_ACCESS, at=0),))
        for _ in range(2):  # a fresh install replays from ordinal 0
            with inject_faults(plan) as injector:
                with pytest.raises(InjectedFaultError):
                    fire(SITE_CACHE_ACCESS)
            assert injector.stats()["fired"] == {SITE_CACHE_ACCESS: 1}


class TestFaultKinds:
    def test_delay_sleeps_without_raising(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_BATCH_FLUSH, kind="delay", delay_s=0.05),))
        with inject_faults(plan):
            started = time.perf_counter()
            fire(SITE_BATCH_FLUSH)
            assert time.perf_counter() - started >= 0.04

    def test_crash_invokes_the_site_hook_and_returns(self):
        calls = []
        plan = FaultPlan(specs=(FaultSpec(SITE_WORKER_DISPATCH, kind="crash"),))
        with inject_faults(plan) as injector:
            fire(SITE_WORKER_DISPATCH, crash=lambda: calls.append("boom"))
        # The hook ran and fire() returned: the *consequence* of the crash
        # (a BrokenProcessPool) surfaces later, at result collection.
        assert calls == ["boom"]
        assert injector.stats()["fired"] == {SITE_WORKER_DISPATCH: 1}

    def test_crash_without_a_hook_degrades_to_error(self):
        plan = FaultPlan(specs=(FaultSpec(SITE_WORKER_DISPATCH, kind="crash"),))
        with inject_faults(plan):
            with pytest.raises(InjectedFaultError, match="injected crash fault"):
                fire(SITE_WORKER_DISPATCH)

    def test_error_message_and_class_are_spec_controlled(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(SITE_CACHE_ACCESS, error="WorkerError", message="cable cut"),
            )
        )
        with inject_faults(plan):
            with pytest.raises(WorkerError, match="cable cut"):
                fire(SITE_CACHE_ACCESS)

    def test_delay_and_error_compose_on_one_call(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(SITE_BATCH_FLUSH, kind="delay", delay_s=0.05),
                FaultSpec(SITE_BATCH_FLUSH, kind="error"),
            )
        )
        with inject_faults(plan):
            started = time.perf_counter()
            with pytest.raises(InjectedFaultError):
                fire(SITE_BATCH_FLUSH)
            assert time.perf_counter() - started >= 0.04


class TestThreadSafety:
    def test_concurrent_fires_account_every_call(self):
        plan = FaultPlan(
            specs=(FaultSpec(SITE_CACHE_ACCESS, probability=0.5, times=10_000),),
            seed=7,
        )
        fired = []
        calls_per_thread = 50

        def worker():
            count = 0
            for _ in range(calls_per_thread):
                try:
                    fire(SITE_CACHE_ACCESS)
                except InjectedFaultError:
                    count += 1
            fired.append(count)

        with inject_faults(plan) as injector:
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        stats = injector.stats()
        assert stats["calls"] == {SITE_CACHE_ACCESS: 4 * calls_per_thread}
        assert stats["fired"] == {SITE_CACHE_ACCESS: sum(fired)}
