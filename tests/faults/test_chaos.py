"""Chaos suite: seeded fault plans replayed against the HTTP-to-worker stack.

Every test installs a fixed-seed :class:`~repro.faults.FaultPlan` and
drives the full serving stack (``SearchHttpApp`` → ``AsyncSearchService``
→ sharded engine → shard workers), then asserts a *resilience invariant*
rather than a particular failure:

* faults that are retried away leave answers **byte-identical** to the
  fault-free run;
* ``partial=True`` responses enumerate **exactly** the faulted shards;
* no request outlives its deadline by more than the injected blocking
  window plus one batch window;
* a SIGKILLed worker pool recovers and subsequent answers are
  byte-identical;
* no stale cache entry survives an index swap.

Deterministic by construction: the plans pin seeds and ordinals, so CI
replays the same faults every run (the ``chaos`` marker gives the suite
its own CI step).
"""

import asyncio
import json
import time

import pytest

from repro.api import build_sharded_index
from repro.faults import (
    SITE_BATCH_FLUSH,
    SITE_CACHE_ACCESS,
    SITE_WORKER_DISPATCH,
    FaultPlan,
    FaultSpec,
    inject_faults,
)
from repro.serving import AsyncSearchService, ReplicaSet, SearchHttpApp
from tests.conftest import make_random_uncertain_string

pytestmark = pytest.mark.chaos

#: Wall-clock bound for any single dispatch in this suite — a hang is the
#: one failure mode chaos tests must never themselves exhibit.
HARD_WATCHDOG_S = 30.0


def _search_body(pattern, tau, timeout_ms=None):
    body = {"pattern": pattern, "tau": tau}
    if timeout_ms is not None:
        body["timeout_ms"] = timeout_ms
    return json.dumps(body).encode("utf-8")


def _dispatch(engine, body, **service_kwargs):
    """One POST /search through app → service → engine; returns the response."""

    async def go():
        async with AsyncSearchService(engine, **service_kwargs) as service:
            return await asyncio.wait_for(
                SearchHttpApp(service).dispatch("POST", "/search", body),
                timeout=HARD_WATCHDOG_S,
            )

    return asyncio.run(go())


@pytest.fixture(scope="module")
def corpus():
    return make_random_uncertain_string(60, 0.3, seed=31)


@pytest.fixture()
def thread_engine(corpus):
    # cache_size=0 so a replayed query actually fans out again instead of
    # answering from the result cache (which would starve the fault site).
    engine = build_sharded_index(
        corpus,
        shards=3,
        tau_min=0.1,
        kind="general",
        max_pattern_len=6,
        cache_size=0,
    )
    yield engine
    engine.close()


class TestRetriedAwayFaults:
    def test_transient_dispatch_fault_leaves_answer_byte_identical(
        self, corpus, thread_engine
    ):
        pattern = corpus.most_likely_string()[:3]
        body = _search_body(pattern, tau=0.2)
        baseline = _dispatch(thread_engine, body)
        assert baseline.status == 200

        # One transient fault on the first shard dispatch; the engine's
        # retry (worker_retries=1 by default) re-attempts the fan-out.
        plan = FaultPlan(
            specs=(FaultSpec(SITE_WORKER_DISPATCH, kind="error", at=0, times=1),),
            seed=42,
        )
        with inject_faults(plan) as injector:
            chaotic = _dispatch(thread_engine, body)
        assert injector.stats()["fired"] == {SITE_WORKER_DISPATCH: 1}
        assert chaotic.status == 200
        assert chaotic.body() == baseline.body()  # byte-identical, not "close"

    def test_persistent_fault_surfaces_as_taxonomy_error(self, thread_engine, corpus):
        pattern = corpus.most_likely_string()[:3]
        # More certain faults than the engine has retries: the injected
        # error must come back over the wire as its taxonomy class, never
        # as a hang or a bare 500 with no type.
        plan = FaultPlan(
            specs=(FaultSpec(SITE_WORKER_DISPATCH, kind="error", times=50),),
            seed=42,
        )
        with inject_faults(plan):
            response = _dispatch(thread_engine, _search_body(pattern, tau=0.2))
        assert response.status == 500
        assert response.payload["error"]["type"] == "InjectedFaultError"


class TestPartialAnswers:
    @pytest.mark.parametrize(
        ("ordinals", "expected_shards"),
        [((1,), [1]), ((0, 2), [0, 2])],
    )
    def test_partial_response_enumerates_exactly_the_faulted_shards(
        self, corpus, ordinals, expected_shards
    ):
        engine = build_sharded_index(
            corpus,
            shards=3,
            tau_min=0.1,
            kind="general",
            max_pattern_len=6,
            cache_size=0,
            partial=True,
            worker_retries=0,
        )
        try:
            pattern = corpus.most_likely_string()[:3]
            body = _search_body(pattern, tau=0.2)
            baseline = _dispatch(engine, body)
            assert baseline.status == 200
            assert "partial" not in baseline.payload  # complete answers stay bare

            # The thread fan-out fires worker-dispatch once per shard in
            # shard order, so ordinal k *is* shard k within one query.
            plan = FaultPlan(
                specs=tuple(
                    FaultSpec(SITE_WORKER_DISPATCH, at=ordinal, times=1)
                    for ordinal in ordinals
                ),
                seed=7,
            )
            with inject_faults(plan) as injector:
                degraded = _dispatch(engine, body)
            assert injector.stats()["fired"] == {
                SITE_WORKER_DISPATCH: len(ordinals)
            }
            assert degraded.status == 200
            assert degraded.payload["partial"] is True
            assert degraded.payload["failed_shards"] == expected_shards
            # Healthy-shard results are a subset of the complete answer.
            complete = {
                json.dumps(match, sort_keys=True)
                for match in baseline.payload["matches"]
            }
            for match in degraded.payload["matches"]:
                assert json.dumps(match, sort_keys=True) in complete
            assert engine.resilience_stats()["partial_answers"] == 1
        finally:
            engine.close()


class TestDeadlines:
    def test_blocked_batch_flush_cannot_outlive_deadline_by_a_window(
        self, thread_engine, corpus
    ):
        pattern = corpus.most_likely_string()[:3]
        delay_s = 0.3
        timeout_ms = 100.0
        window_ms = 2.0
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    SITE_BATCH_FLUSH, kind="delay", delay_s=delay_s, times=1
                ),
            ),
            seed=13,
        )
        with inject_faults(plan) as injector:
            started = time.perf_counter()
            response = _dispatch(
                thread_engine,
                _search_body(pattern, tau=0.2, timeout_ms=timeout_ms),
                max_wait_ms=window_ms,
            )
            elapsed = time.perf_counter() - started
        assert injector.stats()["fired"] == {SITE_BATCH_FLUSH: 1}
        assert response.status == 504
        assert response.payload["error"]["type"] == "DeadlineExceededError"
        # The injected delay blocks the event loop (that is the hang this
        # invariant bounds): the 504 lands as soon as the loop unblocks —
        # deadline + blocking window + one batch window, plus slack for
        # the evaluation the flush had already committed to.
        assert elapsed <= timeout_ms / 1000.0 + delay_s + window_ms / 1000.0 + 1.0

    def test_expired_budget_beats_an_instant_answer(self, corpus):
        # Regression: with a *cached* (instant) answer, the stalled window
        # used to win the same-loop-tick race against the submitter's
        # overdue watchdog — ``set_result`` landed before the cancellation
        # took effect and ``wait_for`` handed back a 200 five times over
        # budget.  The dispatcher's post-evaluation sweep must expire the
        # request deterministically instead.
        pattern = corpus.most_likely_string()[:3]
        engine = build_sharded_index(
            corpus, shards=3, tau_min=0.1, kind="general", max_pattern_len=6
        )
        try:
            plan = FaultPlan(
                specs=(
                    FaultSpec(SITE_BATCH_FLUSH, kind="delay", delay_s=0.3, times=1),
                ),
                seed=17,
            )

            async def go():
                async with AsyncSearchService(engine, max_wait_ms=2.0) as service:
                    app = SearchHttpApp(service)
                    warm = await asyncio.wait_for(
                        app.dispatch(
                            "POST", "/search", _search_body(pattern, tau=0.2)
                        ),
                        timeout=HARD_WATCHDOG_S,
                    )
                    assert warm.status == 200  # cache now holds the answer
                    with inject_faults(plan) as injector:
                        stalled = await asyncio.wait_for(
                            app.dispatch(
                                "POST",
                                "/search",
                                _search_body(pattern, tau=0.2, timeout_ms=100.0),
                            ),
                            timeout=HARD_WATCHDOG_S,
                        )
                    assert injector.stats()["fired"] == {SITE_BATCH_FLUSH: 1}
                    return stalled, service.stats()

            stalled, stats = asyncio.run(go())
            assert stalled.status == 504
            assert stalled.payload["error"]["type"] == "DeadlineExceededError"
            assert stats["deadline_exceeded"] == 1
        finally:
            engine.close()


class TestWorkerCrashRecovery:
    def test_sigkilled_pool_recovers_with_byte_identical_answers(self, corpus):
        engine = build_sharded_index(
            corpus,
            shards=2,
            tau_min=0.1,
            kind="general",
            max_pattern_len=6,
            cache_size=0,
            query_executor="process",
            worker_retries=2,
        )
        try:
            pattern = corpus.most_likely_string()[:3]
            body = _search_body(pattern, tau=0.2)
            # Warm the pool: workers spawn lazily on first dispatch, and a
            # crash hook against a cold pool has nothing to kill.
            baseline = _dispatch(engine, body)
            assert baseline.status == 200

            plan = FaultPlan(
                specs=(
                    FaultSpec(SITE_WORKER_DISPATCH, kind="crash", at=0, times=1),
                ),
                seed=99,
            )
            with inject_faults(plan) as injector:
                recovered = _dispatch(engine, body)
            assert injector.stats()["fired"] == {SITE_WORKER_DISPATCH: 1}
            assert recovered.status == 200
            assert recovered.body() == baseline.body()
            assert engine.resilience_stats()["pool_recoveries"] >= 1

            # And the stack stays healthy afterwards: same answer again,
            # no plan installed.
            assert _dispatch(engine, body).body() == baseline.body()
        finally:
            engine.close()


class TestCacheAcrossSwap:
    def test_no_stale_cache_entry_survives_an_index_swap(self):
        old_corpus = make_random_uncertain_string(40, 0.3, seed=51)
        new_corpus = make_random_uncertain_string(48, 0.3, seed=52)
        pattern = old_corpus.most_likely_string()[:2]

        def build_engine(corpus):
            return build_sharded_index(
                corpus, shards=2, tau_min=0.1, kind="general", max_pattern_len=6
            )

        replicas = ReplicaSet([build_engine(old_corpus), build_engine(old_corpus)])
        reference = build_engine(new_corpus)
        try:
            body = _search_body(pattern, tau=0.2)
            # Warm every replica's result cache under cache-access delays
            # (the fault keeps lookups slow enough that a stale read after
            # the swap could not hide in timing noise).
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        SITE_CACHE_ACCESS, kind="delay", delay_s=0.002, times=500
                    ),
                ),
                seed=3,
            )
            with inject_faults(plan):
                before = [_dispatch(replicas, body) for _ in range(4)]
                assert all(response.status == 200 for response in before)

                replicas.swap(lambda slot: build_engine(new_corpus))

                after = _dispatch(replicas, body)
            assert after.status == 200
            expected = _dispatch(reference, body)
            # The swapped-in engines answer from the *new* index — the old
            # engines' warmed caches went with the old engines.
            assert (
                after.payload["matches"] == expected.payload["matches"]
            )
            assert replicas.stats()["swaps"] == replicas.replica_count
        finally:
            replicas.close()
            reference.close()
