"""Tests for repro.core.listing (Section 6 uncertain string listing)."""

import numpy as np
import pytest

from repro.core.baseline import BruteForceOracle
from repro.core.listing import UncertainStringListingIndex, combine_relevance
from repro.exceptions import ThresholdError, ValidationError
from repro.strings import (
    CorrelationModel,
    CorrelationRule,
    UncertainString,
    UncertainStringCollection,
)


class TestCombineRelevance:
    def test_max(self):
        assert combine_relevance([0.2, 0.5, 0.1], "max") == pytest.approx(0.5)

    def test_or_matches_paper_formula(self):
        values = [0.06, 0.09, 0.048]
        expected = sum(values) - np.prod(values)
        assert combine_relevance(values, "or") == pytest.approx(expected)

    def test_or_single_occurrence_is_probability(self):
        assert combine_relevance([0.3], "or") == pytest.approx(0.3)

    def test_noisy_or(self):
        values = [0.5, 0.5]
        assert combine_relevance(values, "noisy_or") == pytest.approx(0.75)

    def test_empty_is_zero(self):
        assert combine_relevance([], "max") == 0.0
        assert combine_relevance([0.0], "or") == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            combine_relevance([0.5], "mean")  # type: ignore[arg-type]


class TestFigure2Example:
    def test_bf_query_reports_only_d1(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.05)
        matches = index.query("BF", 0.1)
        assert [match.document for match in matches] == [0]
        # d1's best BF occurrence: 0.3 * 0.5.
        assert matches[0].relevance == pytest.approx(0.15)

    def test_bf_query_lower_threshold_adds_d2(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.01)
        assert index.documents("BF", 0.02) == [0, 1]

    def test_documents_helper(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.05)
        assert index.documents("A", 0.5) == [1, 2]


class TestValidation:
    def test_threshold_below_tau_min_rejected(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.2)
        with pytest.raises(ThresholdError):
            index.query("BF", 0.1)

    def test_unknown_metric_rejected(self, figure2_collection):
        with pytest.raises(ValidationError):
            UncertainStringListingIndex(
                figure2_collection, tau_min=0.1, metric="mean"  # type: ignore[arg-type]
            )

    def test_empty_pattern_rejected(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.05)
        with pytest.raises(ValidationError):
            index.query("", 0.1)

    def test_absent_pattern_empty(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.05)
        assert index.query("ZZZ", 0.1) == []

    def test_metadata(self, figure2_collection):
        index = UncertainStringListingIndex(figure2_collection, tau_min=0.05)
        assert index.tau_min == pytest.approx(0.05)
        assert index.metric == "max"
        assert index.collection is figure2_collection
        assert index.stats["documents"] == 3
        report = index.space_report()
        assert report["total"] == sum(
            value
            for key, value in report.items()
            if key not in ("total", "total_wide")
        )
        assert index.nbytes() == report["total"]


def _random_collection(document_count, seed, theta=0.4):
    import random

    def random_document(length, document_seed):
        rng = random.Random(document_seed)
        rows = []
        for _ in range(length):
            if rng.random() < theta:
                characters = rng.sample("ABCD", rng.randint(2, 3))
                weights = [rng.random() + 0.05 for _ in characters]
                total = sum(weights)
                rows.append({c: w / total for c, w in zip(characters, weights)})
            else:
                rows.append({rng.choice("ABCD"): 1.0})
        return UncertainString.from_table(rows)

    rng = np.random.default_rng(seed)
    documents = [
        random_document(int(rng.integers(5, 16)), seed * 100 + i)
        for i in range(document_count)
    ]
    return UncertainStringCollection(documents)


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_max_metric_matches_oracle(self, seed):
        collection = _random_collection(5, seed)
        tau_min = 0.05
        index = UncertainStringListingIndex(collection, tau_min=tau_min, metric="max")
        oracle = BruteForceOracle(collection=collection)
        rng = np.random.default_rng(seed)
        for _ in range(8):
            document = collection[int(rng.integers(0, len(collection)))]
            backbone = document.most_likely_string()
            length = int(rng.integers(1, min(5, len(backbone)) + 1))
            start = int(rng.integers(0, len(backbone) - length + 1))
            pattern = backbone[start : start + length]
            tau = float(rng.uniform(tau_min, 0.8))
            expected = oracle.listing_matches(pattern, tau, metric="max")
            got = index.query(pattern, tau)
            assert [match.document for match in got] == [
                match.document for match in expected
            ], (pattern, tau)
            for got_match, expected_match in zip(got, expected):
                assert got_match.relevance == pytest.approx(expected_match.relevance)

    @pytest.mark.parametrize("metric", ["or", "noisy_or"])
    def test_combined_metrics_superset_of_max(self, metric):
        # OR-style relevance is always at least the max single occurrence, so
        # every document reported under "max" must also be reported.
        collection = _random_collection(6, 123)
        tau_min = 0.05
        max_index = UncertainStringListingIndex(collection, tau_min=tau_min, metric="max")
        combined_index = UncertainStringListingIndex(
            collection, tau_min=tau_min, metric=metric
        )
        backbone = collection[0].most_likely_string()
        for pattern in (backbone[:1], backbone[:2], backbone[1:3]):
            for tau in (0.06, 0.15, 0.4):
                max_documents = set(max_index.documents(pattern, tau))
                combined_documents = set(combined_index.documents(pattern, tau))
                assert max_documents <= combined_documents

    def test_or_metric_relevance_counts_occurrences_above_tau_min(self):
        # Two certain occurrences of "AB" in one document: OR = 2 - 1 = 1.0...
        # i.e. sum - product with both probabilities 1.
        document = UncertainString.from_deterministic("ABAB")
        collection = UncertainStringCollection([document])
        index = UncertainStringListingIndex(collection, tau_min=0.5, metric="or")
        matches = index.query("AB", 0.6)
        assert [match.document for match in matches] == [0]
        assert matches[0].relevance == pytest.approx(1.0)

    def test_long_pattern_falls_back_to_scan(self):
        documents = [
            UncertainString.from_deterministic("ABCABCABCABCABCABCABC"),
            UncertainString.from_deterministic("CBACBACBACBACBACBACBA"),
        ]
        collection = UncertainStringCollection(documents)
        index = UncertainStringListingIndex(collection, tau_min=0.5, metric="max")
        pattern = "ABCABCABCABCABC"
        assert len(pattern) > index.max_short_length
        assert index.documents(pattern, 0.9) == [0]


class TestCorrelatedCollections:
    def test_correlated_documents_are_verified(self):
        correlated = UncertainString(
            [{"e": 0.6, "f": 0.4}, {"q": 1.0}, {"z": 0.7, "w": 0.3}],
            correlations=CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.2, 0.9)]),
        )
        plain = UncertainString.from_deterministic("eqz")
        collection = UncertainStringCollection([correlated, plain])
        index = UncertainStringListingIndex(collection, tau_min=0.05, metric="max")
        oracle = BruteForceOracle(collection=collection)
        for pattern in ("eqz", "qz", "z"):
            for tau in (0.06, 0.2, 0.5):
                assert index.documents(pattern, tau) == [
                    match.document
                    for match in oracle.listing_matches(pattern, tau, metric="max")
                ], (pattern, tau)
