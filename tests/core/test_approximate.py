"""Tests for repro.core.approximate (Section 7 approximate substring search)."""

import numpy as np
import pytest

from repro.core.approximate import ApproximateSubstringIndex
from repro.core.baseline import BruteForceOracle
from repro.exceptions import ThresholdError, ValidationError


class TestConstruction:
    def test_epsilon_bounds(self, figure10_string):
        with pytest.raises(ValidationError):
            ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=0.0)
        with pytest.raises(ValidationError):
            ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=1.0)
        with pytest.raises(Exception):
            ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=-0.5)

    def test_metadata(self, figure10_string):
        index = ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=0.05)
        assert index.tau_min == pytest.approx(0.1)
        assert index.epsilon == pytest.approx(0.05)
        assert index.string is figure10_string
        assert index.link_count > 0
        assert index.nbytes() > 0
        assert index.transformed.tau_min == pytest.approx(0.1)

    def test_smaller_epsilon_means_more_links(self, random_uncertain_string):
        string = random_uncertain_string(25, 0.4, 5)
        coarse = ApproximateSubstringIndex(string, tau_min=0.1, epsilon=0.3)
        fine = ApproximateSubstringIndex(string, tau_min=0.1, epsilon=0.02)
        assert fine.link_count >= coarse.link_count


class TestFigure10Example:
    def test_qp_query(self, figure10_string):
        index = ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=0.05)
        occurrences = index.query("QP", 0.4)
        assert 0 in {occ.position for occ in occurrences}
        # Every reported occurrence is within epsilon of the threshold.
        for occurrence in occurrences:
            true_probability = figure10_string.occurrence_probability(
                "QP", occurrence.position
            )
            assert true_probability > 0.4 - 0.05 - 1e-9

    def test_verify_gives_exact_answer(self, figure10_string):
        index = ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=0.2)
        exact_positions = {
            position
            for position in range(len(figure10_string) - 1)
            if figure10_string.occurrence_probability("QP", position) > 0.4
        }
        verified = {occ.position for occ in index.query("QP", 0.4, verify=True)}
        assert verified == exact_positions


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("epsilon", [0.05, 0.15])
    def test_completeness_and_soundness(self, random_uncertain_string, seed, epsilon):
        string = random_uncertain_string(25, 0.4, seed)
        tau_min = 0.1
        index = ApproximateSubstringIndex(string, tau_min=tau_min, epsilon=epsilon)
        oracle = BruteForceOracle(string=string)
        backbone = string.most_likely_string()
        rng = np.random.default_rng(seed)
        for _ in range(8):
            length = int(rng.integers(1, 6))
            start = int(rng.integers(0, len(string) - length + 1))
            pattern = backbone[start : start + length]
            tau = float(rng.uniform(tau_min + epsilon, 0.95))
            exact = {occ.position for occ in oracle.substring_occurrences(pattern, tau)}
            approximate = {occ.position for occ in index.query(pattern, tau)}
            # Completeness: everything above tau is reported.
            assert exact <= approximate, (pattern, tau)
            # Soundness: everything reported is above tau - epsilon.
            for position in approximate:
                true_probability = string.occurrence_probability(pattern, position)
                assert true_probability > tau - epsilon - 1e-9, (pattern, tau, position)

    @pytest.mark.parametrize("seed", range(5))
    def test_verify_matches_oracle(self, random_uncertain_string, seed):
        string = random_uncertain_string(20, 0.4, 100 + seed)
        index = ApproximateSubstringIndex(string, tau_min=0.1, epsilon=0.1)
        oracle = BruteForceOracle(string=string)
        backbone = string.most_likely_string()
        for pattern in (backbone[:2], backbone[3:6], backbone[1:2]):
            for tau in (0.25, 0.5):
                assert {occ.position for occ in index.query(pattern, tau, verify=True)} == {
                    occ.position for occ in oracle.substring_occurrences(pattern, tau)
                }

    def test_reported_probability_is_lower_bound(self, random_uncertain_string):
        string = random_uncertain_string(20, 0.5, 55)
        index = ApproximateSubstringIndex(string, tau_min=0.1, epsilon=0.1)
        backbone = string.most_likely_string()
        pattern = backbone[:3]
        for occurrence in index.query(pattern, 0.2):
            true_probability = string.occurrence_probability(pattern, occurrence.position)
            assert occurrence.probability <= true_probability + 1e-9


class TestValidation:
    def test_threshold_below_tau_min_rejected(self, figure10_string):
        index = ApproximateSubstringIndex(figure10_string, tau_min=0.2, epsilon=0.05)
        with pytest.raises(ThresholdError):
            index.query("QP", 0.1)

    def test_empty_pattern_rejected(self, figure10_string):
        index = ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=0.05)
        with pytest.raises(ValidationError):
            index.query("", 0.3)

    def test_absent_pattern_empty(self, figure10_string):
        index = ApproximateSubstringIndex(figure10_string, tau_min=0.1, epsilon=0.05)
        assert index.query("ZZ", 0.3) == []
