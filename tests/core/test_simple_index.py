"""Tests for repro.core.simple_index (the Section 4.1 scanning index)."""

import pytest

from repro.core.simple_index import SimpleSpecialIndex
from repro.exceptions import ThresholdError, ValidationError
from repro.strings import CorrelationModel, CorrelationRule, SpecialUncertainString


class TestFigure5Example:
    def test_query_reproduces_figure5(self, figure5_special_string):
        index = SimpleSpecialIndex(figure5_special_string)
        # Figure 5: query ("ana", 0.3) outputs position 4 (1-based) = 3.
        occurrences = index.query("ana", 0.3)
        assert [occ.position for occ in occurrences] == [3]
        assert occurrences[0].probability == pytest.approx(0.8 * 0.9 * 0.6)

    def test_lower_threshold_reports_both_positions(self, figure5_special_string):
        index = SimpleSpecialIndex(figure5_special_string)
        assert [occ.position for occ in index.query("ana", 0.2)] == [1, 3]

    def test_probabilities_match_string(self, figure5_special_string):
        index = SimpleSpecialIndex(figure5_special_string)
        for occurrence in index.query("ana", 0.01):
            assert occurrence.probability == pytest.approx(
                figure5_special_string.occurrence_probability("ana", occurrence.position)
            )


class TestQueryBehaviour:
    def test_absent_pattern(self, figure5_special_string):
        assert SimpleSpecialIndex(figure5_special_string).query("xyz", 0.1) == []

    def test_pattern_present_but_below_threshold(self, figure5_special_string):
        assert SimpleSpecialIndex(figure5_special_string).query("banana", 0.9) == []

    def test_empty_pattern_rejected(self, figure5_special_string):
        with pytest.raises(ValidationError):
            SimpleSpecialIndex(figure5_special_string).query("", 0.1)

    def test_invalid_threshold_rejected(self, figure5_special_string):
        index = SimpleSpecialIndex(figure5_special_string)
        with pytest.raises(ThresholdError):
            index.query("ana", 0.0)
        with pytest.raises(ThresholdError):
            index.query("ana", 1.5)

    def test_tau_min_is_zero(self, figure5_special_string):
        assert SimpleSpecialIndex(figure5_special_string).tau_min == 0.0

    def test_count_and_exists(self, figure5_special_string):
        index = SimpleSpecialIndex(figure5_special_string)
        assert index.count("ana", 0.2) == 2
        assert index.exists("ana", 0.2)
        assert not index.exists("ana", 0.9)

    def test_scanned_candidates(self, figure5_special_string):
        index = SimpleSpecialIndex(figure5_special_string)
        assert index.scanned_candidates("ana") == 2
        assert index.scanned_candidates("a") == 3
        assert index.scanned_candidates("zzz") == 0

    def test_nbytes_positive(self, figure5_special_string):
        assert SimpleSpecialIndex(figure5_special_string).nbytes() > 0

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce_scan(self, random_special_string, seed):
        string = random_special_string(60, seed)
        index = SimpleSpecialIndex(string)
        for pattern_length in (1, 2, 4):
            pattern = string.text[seed % 10 : seed % 10 + pattern_length]
            for tau in (0.05, 0.3, 0.7):
                expected = string.matching_positions(pattern, tau)
                assert [occ.position for occ in index.query(pattern, tau)] == expected


class TestCorrelationHandling:
    @pytest.fixture
    def correlated_index(self):
        # "eqz" with z stored as pr+ = 0.3, correlated with e at position 0.
        string = SpecialUncertainString([("e", 0.6), ("q", 1.0), ("z", 0.3)])
        correlations = CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.4)])
        return SimpleSpecialIndex(string, correlations=correlations)

    def test_partner_inside_window(self, correlated_index):
        occurrences = correlated_index.query("eqz", 0.1)
        assert [occ.position for occ in occurrences] == [0]
        assert occurrences[0].probability == pytest.approx(0.6 * 1.0 * 0.3)

    def test_partner_outside_window_uses_mixture(self, correlated_index):
        occurrences = correlated_index.query("qz", 0.1)
        assert [occ.position for occ in occurrences] == [1]
        assert occurrences[0].probability == pytest.approx(0.34)

    def test_correlation_model_validated(self):
        string = SpecialUncertainString([("a", 0.5)])
        rules = CorrelationModel([CorrelationRule(3, "a", 0, "b", 0.5, 0.5)])
        with pytest.raises(Exception):
            SimpleSpecialIndex(string, correlations=rules)
