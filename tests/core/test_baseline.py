"""Tests for repro.core.baseline (online matcher and brute-force oracle)."""

import pytest

from repro.core.baseline import BruteForceOracle, OnlineDynamicProgrammingMatcher
from repro.exceptions import ValidationError
from repro.strings import CorrelationModel, CorrelationRule, UncertainString


class TestOnlineMatcher:
    def test_matches_figure3_queries(self, figure3_string):
        matcher = OnlineDynamicProgrammingMatcher(figure3_string)
        assert [occ.position for occ in matcher.query("AT", 0.4)] == [8]
        assert [occ.position for occ in matcher.query("AT", 0.1)] == [6, 8]

    def test_probabilities_reported(self, figure3_string):
        matcher = OnlineDynamicProgrammingMatcher(figure3_string)
        occurrence = matcher.query("AT", 0.4)[0]
        assert occurrence.probability == pytest.approx(0.5)

    def test_tau_min_zero_and_string_accessor(self, figure3_string):
        matcher = OnlineDynamicProgrammingMatcher(figure3_string)
        assert matcher.tau_min == 0.0
        assert matcher.string is figure3_string

    def test_agrees_with_string_scan(self, random_uncertain_string):
        string = random_uncertain_string(40, 0.5, 9)
        matcher = OnlineDynamicProgrammingMatcher(string)
        backbone = string.most_likely_string()
        for pattern in (backbone[:1], backbone[5:8], backbone[10:16]):
            for tau in (0.05, 0.3, 0.7):
                assert [occ.position for occ in matcher.query(pattern, tau)] == (
                    string.matching_positions(pattern, tau)
                )

    def test_correlated_string_evaluated_exactly(self):
        string = UncertainString(
            [{"e": 0.6, "f": 0.4}, {"q": 1.0}, {"z": 1.0}],
            correlations=CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.4)]),
        )
        matcher = OnlineDynamicProgrammingMatcher(string)
        occurrences = matcher.query("qz", 0.3)
        assert [occ.position for occ in occurrences] == [1]
        assert occurrences[0].probability == pytest.approx(0.34)

    def test_invalid_inputs(self, figure3_string):
        matcher = OnlineDynamicProgrammingMatcher(figure3_string)
        with pytest.raises(ValidationError):
            matcher.query("", 0.5)
        with pytest.raises(Exception):
            matcher.query("AT", 0.0)


class TestBruteForceOracle:
    def test_substring_occurrences(self, figure3_string):
        oracle = BruteForceOracle(string=figure3_string)
        occurrences = oracle.substring_occurrences("AT", 0.4)
        assert [occ.position for occ in occurrences] == [8]
        assert occurrences[0].probability == pytest.approx(0.5)

    def test_listing_matches(self, figure2_collection):
        oracle = BruteForceOracle(collection=figure2_collection)
        assert [match.document for match in oracle.listing_matches("BF", 0.1)] == [0]

    def test_listing_matches_with_or_metric(self, figure2_collection):
        oracle = BruteForceOracle(collection=figure2_collection)
        matches = oracle.listing_matches("BF", 0.01, metric="or")
        assert [match.document for match in matches] == [0, 1]

    def test_missing_string_raises(self, figure2_collection):
        oracle = BruteForceOracle(collection=figure2_collection)
        with pytest.raises(ValueError):
            oracle.substring_occurrences("A", 0.1)

    def test_missing_collection_raises(self, figure3_string):
        oracle = BruteForceOracle(string=figure3_string)
        with pytest.raises(ValueError):
            oracle.listing_matches("A", 0.1)
