"""Tests for repro.core.cumulative (C and C_i arrays, correlation adjustment)."""

import math

import numpy as np
import pytest

from repro.core.cumulative import (
    NEGATIVE_INFINITY,
    apply_correlation_adjustment,
    correlation_adjusted_window_log_probability,
    cumulative_log_probabilities,
    prefix_length_log_probabilities,
    window_log_probability,
)
from repro.exceptions import ValidationError
from repro.strings import CorrelationModel, CorrelationRule
from repro.suffix.suffix_array import build_suffix_array


class TestCumulativeLogProbabilities:
    def test_matches_figure5_products(self):
        # Figure 5's C array: 0.4, 0.28, 0.14, 0.112, 0.1008, 0.06048.
        probabilities = [0.4, 0.7, 0.5, 0.8, 0.9, 0.6]
        prefix = cumulative_log_probabilities(probabilities)
        assert len(prefix) == 7
        assert prefix[0] == 0.0
        products = np.exp(prefix[1:])
        assert products == pytest.approx([0.4, 0.28, 0.14, 0.112, 0.1008, 0.06048])

    def test_zero_probability_maps_to_neg_inf(self):
        prefix = cumulative_log_probabilities([0.5, 0.0, 0.5])
        assert prefix[2] == NEGATIVE_INFINITY
        assert prefix[3] == NEGATIVE_INFINITY

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            cumulative_log_probabilities([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            cumulative_log_probabilities([1.5])
        with pytest.raises(ValidationError):
            cumulative_log_probabilities([-0.1])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            cumulative_log_probabilities(np.zeros((2, 2)))

    def test_no_underflow_for_long_strings(self):
        # 10k characters at probability 0.5 would underflow a raw product.
        prefix = cumulative_log_probabilities([0.5] * 10_000)
        assert math.isfinite(prefix[-1])
        assert prefix[-1] == pytest.approx(10_000 * math.log(0.5))


class TestWindowLogProbability:
    def test_window_values(self):
        prefix = cumulative_log_probabilities([0.4, 0.7, 0.5])
        assert math.exp(window_log_probability(prefix, 0, 2)) == pytest.approx(0.28)
        assert math.exp(window_log_probability(prefix, 1, 2)) == pytest.approx(0.35)

    def test_out_of_bounds_is_neg_inf(self):
        prefix = cumulative_log_probabilities([0.4, 0.7, 0.5])
        assert window_log_probability(prefix, 2, 2) == NEGATIVE_INFINITY
        assert window_log_probability(prefix, -1, 1) == NEGATIVE_INFINITY
        assert window_log_probability(prefix, 0, 0) == NEGATIVE_INFINITY


class TestPrefixLengthLogProbabilities:
    def test_values_follow_suffix_array_order(self):
        text = "banana"
        probabilities = [0.4, 0.7, 0.5, 0.8, 0.9, 0.6]
        prefix = cumulative_log_probabilities(probabilities)
        suffix_array = build_suffix_array(text)
        values = prefix_length_log_probabilities(prefix, suffix_array, 3)
        for rank, start in enumerate(suffix_array):
            start = int(start)
            if start + 3 <= len(text):
                expected = sum(math.log(p) for p in probabilities[start : start + 3])
                assert values[rank] == pytest.approx(expected)
            else:
                assert values[rank] == NEGATIVE_INFINITY

    def test_invalid_length_rejected(self):
        prefix = cumulative_log_probabilities([0.5])
        with pytest.raises(ValidationError):
            prefix_length_log_probabilities(prefix, np.asarray([0]), 0)


class TestCorrelationAdjustment:
    @pytest.fixture
    def setting(self):
        # Special string e q z where z's stored probability is pr+ = 0.3 and
        # it is correlated with e at position 0 (Figure 4).
        text = "eqz"
        probabilities = np.asarray([0.6, 1.0, 0.3])
        correlations = CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.4)])
        prefix = cumulative_log_probabilities(probabilities)
        suffix_array = build_suffix_array(text)
        return text, probabilities, correlations, prefix, suffix_array

    def test_partner_inside_window_keeps_present_probability(self, setting):
        text, probabilities, correlations, prefix, suffix_array = setting
        values = prefix_length_log_probabilities(prefix, suffix_array, 3)
        adjusted = apply_correlation_adjustment(
            values, suffix_array, 3, correlations, text, probabilities
        )
        # Window "eqz" contains the partner (e present): probability stays
        # 0.6 * 1.0 * 0.3.
        rank_of_full = int(np.flatnonzero(suffix_array == 0)[0])
        assert math.exp(adjusted[rank_of_full]) == pytest.approx(0.6 * 1.0 * 0.3)

    def test_partner_outside_window_uses_mixture(self, setting):
        text, probabilities, correlations, prefix, suffix_array = setting
        values = prefix_length_log_probabilities(prefix, suffix_array, 2)
        adjusted = apply_correlation_adjustment(
            values, suffix_array, 2, correlations, text, probabilities
        )
        # Window "qz" excludes the partner: pr(z) = 0.6*0.3 + 0.4*0.4 = 0.34.
        rank_of_qz = int(np.flatnonzero(suffix_array == 1)[0])
        assert math.exp(adjusted[rank_of_qz]) == pytest.approx(1.0 * 0.34)

    def test_no_rules_returns_same_values(self, setting):
        text, probabilities, _, prefix, suffix_array = setting
        values = prefix_length_log_probabilities(prefix, suffix_array, 2)
        assert apply_correlation_adjustment(
            values, suffix_array, 2, None, text, probabilities
        ) is values
        assert apply_correlation_adjustment(
            values, suffix_array, 2, CorrelationModel(), text, probabilities
        ) is values

    def test_scalar_helper_matches_array_version(self, setting):
        text, probabilities, correlations, prefix, suffix_array = setting
        values = prefix_length_log_probabilities(prefix, suffix_array, 2)
        adjusted = apply_correlation_adjustment(
            values, suffix_array, 2, correlations, text, probabilities
        )
        for rank, start in enumerate(suffix_array):
            scalar = correlation_adjusted_window_log_probability(
                prefix, int(start), 2, correlations, text, probabilities
            )
            if math.isfinite(adjusted[rank]):
                assert scalar == pytest.approx(adjusted[rank])

    def test_rule_for_character_not_in_text_is_ignored(self):
        text = "abc"
        probabilities = np.asarray([1.0, 1.0, 1.0])
        correlations = CorrelationModel([CorrelationRule(2, "z", 0, "a", 0.3, 0.4)])
        prefix = cumulative_log_probabilities(probabilities)
        suffix_array = build_suffix_array(text)
        values = prefix_length_log_probabilities(prefix, suffix_array, 2)
        adjusted = apply_correlation_adjustment(
            values, suffix_array, 2, correlations, text, probabilities
        )
        assert np.allclose(adjusted, values, equal_nan=True)
