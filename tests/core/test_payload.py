"""The IndexPayload currency: structure, fuzz round-trips, RMQ equivalence.

The payload layer is the single definition of "what an index is made of";
these tests pin the two properties everything downstream relies on:

* **payload → index → payload is exact** — re-deriving the payload from a
  restored index reproduces the same schema, meta and stored arrays;
* **answers are byte-identical** — an index rebuilt with ``from_payload``
  (including its space-efficient RMQ restore forms) answers every probe
  exactly like the in-memory original.
"""

import random

import numpy as np
import pytest

from repro.api import build_index, index_from_payload, index_to_payload
from repro.exceptions import ValidationError
from repro.payload import (
    COMPACT_META_KEY,
    IndexPayload,
    PAYLOAD_VERSION,
    array_checksum,
    verify_manifest_checksums,
)
from repro.strings import UncertainStringCollection
from repro.suffix.rmq import (
    BlockRMQ,
    CompactRMQ,
    SparseTableRMQ,
    rmq_from_payload,
    rmq_to_payload,
)
from tests.conftest import make_random_special_string, make_random_uncertain_string


class TestIndexPayloadStructure:
    def test_nbytes_counts_stored_derived_and_children(self):
        child = IndexPayload("rmq/sparse", arrays={"a": np.zeros(4)})
        payload = IndexPayload(
            "index/simple",
            arrays={"x": np.zeros(2)},
            derived={"y": np.zeros(3)},
            children={"c": child},
        )
        assert payload.nbytes() == (2 + 3 + 4) * 8
        assert payload.stored_nbytes() == (2 + 4) * 8

    def test_space_report_collapses_indexed_families(self):
        payload = IndexPayload(
            "index/special",
            arrays={
                "short_values_1": np.zeros(2),
                "short_values_2": np.zeros(2),
                "prefix": np.zeros(1),
            },
            children={"rmq_short_1": IndexPayload("rmq/sparse", arrays={"b": np.zeros(1)})},
        )
        report = payload.space_report()
        assert report["short_values"] == 32
        assert report["rmq_short"] == 8
        assert report["prefix"] == 8
        assert report["total"] == sum(
            v for k, v in report.items() if k not in ("total", "total_wide")
        )
        assert report["total_wide"] == report["total"]

    def test_flatten_and_manifest_round_trip(self):
        child = IndexPayload("transformed", meta={"text": "ab"}, arrays={"p": np.arange(3)})
        payload = IndexPayload(
            "index/general",
            meta={"tau_min": 0.1},
            arrays={"suffix_array": np.arange(5)},
            children={"transformed": child},
        )
        flat = payload.flatten()
        assert set(flat) == {"suffix_array", "transformed/p"}
        rebuilt = IndexPayload.from_manifest(payload.manifest(), flat)
        assert rebuilt.schema == payload.schema
        assert rebuilt.meta == payload.meta
        assert (rebuilt.arrays["suffix_array"] == payload.arrays["suffix_array"]).all()
        assert (rebuilt.children["transformed"].arrays["p"] == child.arrays["p"]).all()

    def test_missing_archive_array_fails_loudly(self):
        payload = IndexPayload("index/simple", arrays={"x": np.zeros(1)})
        with pytest.raises(ValidationError):
            IndexPayload.from_manifest(payload.manifest(), {})

    def test_validate_rejects_bad_names_and_meta(self):
        with pytest.raises(ValidationError):
            IndexPayload("s", arrays={"a/b": np.zeros(1)}).validate()
        with pytest.raises(ValidationError):
            IndexPayload("s", meta={"x": object()}).validate()
        with pytest.raises(ValidationError):
            IndexPayload("s", arrays={"a": np.zeros(1)}, derived={"a": np.zeros(1)}).validate()
        with pytest.raises(ValidationError):
            IndexPayload("").validate()

    def test_version_travels_through_manifest(self):
        payload = IndexPayload("s")
        assert payload.version == PAYLOAD_VERSION
        assert payload.manifest()["version"] == PAYLOAD_VERSION


class TestCompactPayload:
    def _payload(self):
        return IndexPayload(
            "index/simple",
            arrays={
                "positions": np.arange(300, dtype=np.int64),
                "links": np.array([-1, 0, 200], dtype=np.int64),
                "flags": np.array([True, False, True, True, False]),
                "probabilities": np.linspace(0.0, 1.0, 7),
            },
            derived={"table": np.zeros(64)},
            children={"rmq": IndexPayload("rmq/sparse", arrays={"b": np.arange(9)})},
        )

    def test_narrowing_packing_and_expand(self):
        payload = self._payload()
        compacted = payload.compact().validate()
        assert compacted.arrays["positions"].dtype == np.uint16
        assert compacted.arrays["links"].dtype == np.int16  # -1 sentinel: signed
        assert compacted.arrays["flags"].dtype == np.uint8  # packbits
        assert compacted.arrays["probabilities"].dtype == np.float64  # untouched
        assert not compacted.derived  # dropped; from_payload rebuilds smaller
        assert compacted.children["rmq"].arrays["b"].dtype == np.uint8
        record = compacted.meta[COMPACT_META_KEY]
        assert record["positions"] == {"kind": "narrowed", "logical": "int64"}
        assert record["flags"] == {"kind": "packed_bool", "length": 5}
        assert "probabilities" not in record
        expanded = compacted.expand()
        # The one expansion boundary restores bools; integers stay narrow.
        assert expanded.arrays["flags"].dtype == np.bool_
        assert (expanded.arrays["flags"] == payload.arrays["flags"]).all()
        assert expanded.arrays["positions"].dtype == np.uint16
        assert (expanded.arrays["positions"] == payload.arrays["positions"]).all()
        assert "flags" not in expanded.meta[COMPACT_META_KEY]

    def test_compact_is_idempotent_and_expand_is_identity_when_unpacked(self):
        payload = IndexPayload("index/simple", arrays={"x": np.arange(40)})
        assert payload.expand() is payload  # nothing packed anywhere
        once = payload.compact()
        twice = once.compact()
        assert twice.meta == once.meta
        for name in once.arrays:
            assert twice.arrays[name].dtype == once.arrays[name].dtype
            assert (twice.arrays[name] == once.arrays[name]).all()

    def test_wide_accounting_remembers_logical_dtypes(self):
        payload = self._payload()
        compacted = payload.compact()
        # Stored arrays count at their logical dtypes; the dropped derived
        # table is gone from both sides of the ledger.
        assert compacted.wide_nbytes() == payload.stored_nbytes()
        assert compacted.nbytes() < compacted.wide_nbytes()
        report = compacted.space_report()
        assert report["total_wide"] == compacted.wide_nbytes()
        assert report["total"] == compacted.nbytes()
        # A never-compacted payload reports both totals equal.
        wide_report = IndexPayload("s", arrays={"x": np.arange(8)}).space_report()
        assert wide_report["total_wide"] == wide_report["total"]

    def test_checksums_recorded_and_verified(self):
        assert array_checksum(np.empty(0)) == 0
        payload = self._payload()
        manifest, flat = payload.manifest(), payload.flatten()
        assert manifest["checksums"]["positions"] == array_checksum(
            payload.arrays["positions"]
        )
        verify_manifest_checksums(manifest, flat)  # pristine: no raise
        corrupt = dict(flat)
        damaged = corrupt["rmq/b"].copy()
        damaged[0] += 1
        corrupt["rmq/b"] = damaged
        with pytest.raises(ValidationError, match="rmq/b"):
            verify_manifest_checksums(manifest, corrupt)
        # Pre-checksum manifests (and missing arrays) verify trivially.
        legacy = {key: value for key, value in manifest.items() if key != "checksums"}
        legacy["children"] = {}
        verify_manifest_checksums(legacy, corrupt)


@pytest.fixture(params=["sparse", "block"])
def rmq_flavour(request):
    return request.param


class TestRMQPayloadRoundTrip:
    """Both RMQ implementations: payload → structure → payload exact,
    answers identical to the original (incl. tie-breaks)."""

    def _random_values(self, rng, n):
        # Heavy ties plus -inf entries: the regime where tie-breaks matter.
        return rng.choice([0.2, 0.5, 0.5, 0.9, -np.inf], size=n)

    @pytest.mark.parametrize("mode", ["max", "min"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_round_trip_is_exact_and_equivalent(self, rmq_flavour, mode, seed):
        rng = np.random.default_rng(seed)
        for _ in range(20):
            n = int(rng.integers(1, 120))
            values = self._random_values(rng, n)
            original = (
                SparseTableRMQ(values, mode=mode)
                if rmq_flavour == "sparse"
                else BlockRMQ(values, mode=mode)
            )
            payload = rmq_to_payload(original).validate()
            # Space efficiency: the stored payload is block positions only.
            assert set(payload.arrays) == {"block_positions"}
            restored = rmq_from_payload(values, payload)
            if rmq_flavour == "sparse":
                assert isinstance(restored, CompactRMQ)
            else:
                assert isinstance(restored, BlockRMQ)
            # payload → structure → payload is exact.
            payload_again = rmq_to_payload(restored)
            assert payload_again.schema == payload.schema
            assert payload_again.meta == payload.meta
            assert (
                payload_again.arrays["block_positions"]
                == payload.arrays["block_positions"]
            ).all()
            # Answers byte-identical, scalar and batch.
            lefts = rng.integers(0, n, size=40)
            rights = np.array([int(rng.integers(l, n)) for l in lefts])
            assert (
                original.query_batch(lefts, rights)
                == restored.query_batch(lefts, rights)
            ).all()
            for left, right in zip(lefts[:8], rights[:8]):
                assert original.query(int(left), int(right)) == restored.query(
                    int(left), int(right)
                )

    def test_sparse_payload_is_smaller_than_table(self):
        values = np.random.default_rng(7).random(4096)
        rmq = SparseTableRMQ(values)
        payload = rmq.to_payload()
        assert payload.stored_nbytes() * 10 < rmq._table.nbytes
        # Memory accounting still sees the real footprint.
        assert payload.nbytes() >= rmq._table.nbytes

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValidationError):
            rmq_from_payload(np.zeros(3), IndexPayload("rmq/quantum"))


def _build_engine(kind, rng):
    if kind in ("special", "simple"):
        data = make_random_special_string(rng.randint(15, 40), seed=rng.randint(0, 9999))
    elif kind == "listing":
        data = UncertainStringCollection(
            [
                make_random_uncertain_string(
                    rng.randint(5, 14), 0.3, seed=rng.randint(0, 9999)
                )
                for _ in range(rng.randint(2, 5))
            ]
        )
    else:
        data = make_random_uncertain_string(
            rng.randint(12, 36), 0.3, seed=rng.randint(0, 9999)
        )
    kwargs = {"kind": kind}
    if kind in ("general", "approximate", "listing"):
        kwargs["tau_min"] = 0.1
    if kind == "approximate":
        kwargs["epsilon"] = 0.05
    if kind in ("special", "general", "listing") and rng.random() < 0.5:
        kwargs["rmq_implementation"] = rng.choice(["sparse", "block"])
    return build_index(data, **kwargs)


def _probe(engine, rng):
    if engine.is_listing:
        backbone = engine.index.collection[0].most_likely_string()
    else:
        string = engine.index.string
        backbone = string.text if hasattr(string, "text") else string.most_likely_string()
    length = rng.randint(1, min(4, len(backbone)))
    start = rng.randint(0, len(backbone) - length)
    tau = max(engine.tau_min, round(rng.uniform(0.1, 0.9), 3)) or 0.1
    return backbone[start : start + length], tau, rng.randint(1, 5)


class TestIndexPayloadFuzzRoundTrip:
    """All five kinds: payload → index → payload exact, answers identical."""

    @pytest.mark.parametrize(
        "kind", ["special", "simple", "general", "approximate", "listing"]
    )
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_kind_round_trip(self, kind, seed):
        rng = random.Random(seed * 31 + hash(kind) % 101)
        engine = _build_engine(kind, rng)
        payload = index_to_payload(engine.index)
        assert payload.schema == f"index/{kind}"
        restored = index_from_payload(payload)
        assert type(restored) is type(engine.index)

        # payload → index → payload is exact: same schema tree, same meta,
        # same stored arrays (bit for bit).
        payload_again = index_to_payload(restored)
        assert payload_again.manifest() == payload.manifest()
        flat, flat_again = payload.flatten(), payload_again.flatten()
        assert set(flat) == set(flat_again)
        for key in flat:
            assert flat[key].dtype == flat_again[key].dtype, key
            assert np.array_equal(flat[key], flat_again[key]), key

        # Answers byte-identical to the in-memory original.
        for _ in range(12):
            pattern, tau, k = _probe(engine, rng)
            assert engine.index.query(pattern, tau) == restored.query(pattern, tau)
            assert engine.index.top_k(pattern, k, tau=tau) == restored.top_k(
                pattern, k, tau=tau
            )

    @pytest.mark.parametrize("kind", ["special", "general", "listing"])
    def test_space_accounting_derives_from_payload(self, kind):
        rng = random.Random(5)
        engine = _build_engine(kind, rng)
        payload = index_to_payload(engine.index)
        assert engine.index.nbytes() == payload.nbytes()
        report = engine.index.space_report()
        assert report == payload.space_report()
        assert report["total"] == sum(
            v for key, v in report.items() if key not in ("total", "total_wide")
        )

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValidationError):
            index_from_payload(IndexPayload("rmq/sparse"))
        with pytest.raises(ValidationError):
            index_from_payload(IndexPayload("index/unheard-of"))


class TestCompactEquivalenceFuzz:
    """All five kinds: the dtype-minimized restore answers byte-identically.

    The compact payload narrows integer dtypes and drops derived tables;
    the restored index must return *exactly* the wide index's matches —
    positions and float64 probabilities bit for bit — because narrowing
    only touches integer carriers, never the log-space probability sums.
    """

    @pytest.mark.parametrize(
        "kind", ["special", "simple", "general", "approximate", "listing"]
    )
    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_compact_answers_byte_identical(self, kind, seed):
        rng = random.Random(seed * 37 + hash(kind) % 113)
        engine = _build_engine(kind, rng)
        payload = index_to_payload(engine.index)
        compacted = payload.compact()
        # Narrowing actually bites: the stored bytes shrink on every kind
        # (int64 positions/ranks fit in uint8/16 at these input sizes).
        assert compacted.stored_nbytes() < payload.stored_nbytes(), kind
        assert compacted.wide_nbytes() == payload.stored_nbytes()
        restored = index_from_payload(compacted)
        assert type(restored) is type(engine.index)
        for _ in range(12):
            pattern, tau, k = _probe(engine, rng)
            assert engine.index.query(pattern, tau) == restored.query(pattern, tau), (
                kind,
                pattern,
                tau,
            )
            assert engine.index.top_k(pattern, k, tau=tau) == restored.top_k(
                pattern, k, tau=tau
            ), (kind, pattern, k)

    @pytest.mark.parametrize("kind", ["special", "general"])
    def test_build_index_compact_flag(self, kind):
        data = (
            make_random_special_string(60, seed=7)
            if kind == "special"
            else make_random_uncertain_string(40, 0.3, seed=7)
        )
        kwargs = {"kind": kind, "tau_min": 0.1} if kind == "general" else {"kind": kind}
        wide = build_index(data, **kwargs)
        compact = build_index(data, compact=True, **kwargs)
        assert compact.index.nbytes() < wide.index.nbytes()
        rng = random.Random(78)
        for _ in range(8):
            pattern, tau, _ = _probe(wide, rng)
            assert wide.index.query(pattern, tau) == compact.index.query(pattern, tau)
