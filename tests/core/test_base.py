"""Tests for repro.core.base (result types and recursive RMQ reporting)."""

import numpy as np
import pytest

from repro.core.base import (
    ListingMatch,
    Occurrence,
    report_above_threshold,
    sort_listing_matches,
    sort_occurrences,
)
from repro.suffix.rmq import SparseTableRMQ


class TestResultTypes:
    def test_occurrence_coerces_types(self):
        occurrence = Occurrence(np.int64(3), np.float64(0.5))
        assert isinstance(occurrence.position, int)
        assert isinstance(occurrence.probability, float)

    def test_occurrence_ordering(self):
        assert Occurrence(1, 0.9) < Occurrence(2, 0.1)

    def test_listing_match_coerces_types(self):
        match = ListingMatch(np.int64(7), np.float64(0.25))
        assert match.document == 7
        assert match.relevance == pytest.approx(0.25)

    def test_sort_occurrences_by_position(self):
        occurrences = [Occurrence(5, 0.1), Occurrence(1, 0.9), Occurrence(3, 0.5)]
        assert [occ.position for occ in sort_occurrences(occurrences)] == [1, 3, 5]

    def test_sort_listing_matches_by_document(self):
        matches = [ListingMatch(2, 0.1), ListingMatch(0, 0.9)]
        assert [match.document for match in sort_listing_matches(matches)] == [0, 2]


class TestReportAboveThreshold:
    def _report(self, values, left, right, threshold):
        array = np.asarray(values, dtype=np.float64)
        rmq = SparseTableRMQ(array)
        return sorted(report_above_threshold(rmq, array, left, right, threshold))

    def test_reports_exactly_the_values_above_threshold(self):
        values = [0.1, 0.9, 0.3, 0.7, 0.2, 0.8]
        expected = [index for index, value in enumerate(values) if value > 0.5]
        assert self._report(values, 0, 5, 0.5) == expected

    def test_respects_range_bounds(self):
        values = [0.9, 0.1, 0.9, 0.1, 0.9]
        assert self._report(values, 1, 3, 0.5) == [2]

    def test_empty_when_nothing_qualifies(self):
        assert self._report([0.1, 0.2, 0.3], 0, 2, 0.9) == []

    def test_empty_range_yields_nothing(self):
        values = np.asarray([1.0, 2.0])
        rmq = SparseTableRMQ(values)
        assert list(report_above_threshold(rmq, values, 1, 0, 0.0)) == []

    def test_threshold_is_strict(self):
        assert self._report([0.5, 0.5], 0, 1, 0.5) == []

    def test_single_element_ranges(self):
        assert self._report([0.7], 0, 0, 0.5) == [0]
        assert self._report([0.3], 0, 0, 0.5) == []

    def test_handles_negative_infinity_entries(self):
        values = [float("-inf"), 1.0, float("-inf"), 2.0]
        assert self._report(values, 0, 3, 0.0) == [1, 3]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce_on_random_arrays(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(200)
        threshold = float(rng.random())
        left, right = sorted(rng.integers(0, 200, size=2).tolist())
        expected = [
            index for index in range(left, right + 1) if values[index] > threshold
        ]
        assert self._report(values, left, right, threshold) == expected

    def test_large_range_does_not_hit_recursion_limit(self):
        # 50k elements all above the threshold: a recursive implementation
        # would overflow Python's recursion limit.
        values = np.linspace(0.5, 1.0, 50_000)
        rmq = SparseTableRMQ(values)
        reported = list(report_above_threshold(rmq, values, 0, len(values) - 1, 0.0))
        assert len(reported) == len(values)
