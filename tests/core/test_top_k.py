"""Tests for the top-k most-probable-occurrence queries."""

import numpy as np
import pytest

from repro.core.base import top_values_above_threshold
from repro.core.baseline import BruteForceOracle
from repro.core.general_index import GeneralUncertainStringIndex
from repro.core.special_index import SpecialUncertainStringIndex
from repro.exceptions import ValidationError
from repro.suffix.rmq import SparseTableRMQ


class TestTopValuesHelper:
    def _top(self, values, left, right, k, threshold):
        array = np.asarray(values, dtype=np.float64)
        rmq = SparseTableRMQ(array)
        return top_values_above_threshold(rmq, array, left, right, k, threshold)

    def test_returns_largest_first(self):
        values = [0.1, 0.9, 0.3, 0.7, 0.5]
        assert self._top(values, 0, 4, 3, 0.0) == [1, 3, 4]

    def test_respects_threshold(self):
        values = [0.1, 0.9, 0.3]
        assert self._top(values, 0, 2, 5, 0.2) == [1, 2]

    def test_respects_range(self):
        values = [0.9, 0.1, 0.8, 0.2]
        assert self._top(values, 1, 3, 2, 0.0) == [2, 3]

    def test_empty_inputs(self):
        values = [0.5]
        assert self._top(values, 1, 0, 3, 0.0) == []
        assert self._top(values, 0, 0, 0, 0.0) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_numpy_argsort(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(80)
        k = int(rng.integers(1, 15))
        got = self._top(values, 0, 79, k, 0.0)
        expected_values = sorted(values, reverse=True)[:k]
        assert [values[i] for i in got] == pytest.approx(expected_values)


class TestGeneralIndexTopK:
    def test_figure10_top_k(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        top = index.top_k("QP", 2)
        assert [occ.position for occ in top] == [0, 1]
        assert top[0].probability == pytest.approx(0.49)
        assert top[1].probability == pytest.approx(0.3)

    def test_k_one_returns_best(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        best = index.top_k("P", 1)[0]
        assert best.probability == pytest.approx(1.0)
        assert best.position == 2

    def test_invalid_k(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        with pytest.raises(ValidationError):
            index.top_k("P", 0)

    def test_absent_pattern(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        assert index.top_k("ZZ", 3) == []

    def test_tau_floor_applies(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        top = index.top_k("QP", 5, tau=0.4)
        assert [occ.position for occ in top] == [0]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_ranking(self, random_uncertain_string, seed):
        string = random_uncertain_string(25, 0.4, 500 + seed)
        index = GeneralUncertainStringIndex(string, tau_min=0.1)
        oracle = BruteForceOracle(string=string)
        backbone = string.most_likely_string()
        for pattern in (backbone[:1], backbone[2:5], backbone[4:8]):
            for k in (1, 3, 10):
                expected = sorted(
                    oracle.substring_occurrences(pattern, 0.1),
                    key=lambda occ: (-occ.probability, occ.position),
                )[:k]
                got = index.top_k(pattern, k)
                assert [occ.probability for occ in got] == pytest.approx(
                    [occ.probability for occ in expected]
                )

    def test_probabilities_are_non_increasing(self, random_uncertain_string):
        string = random_uncertain_string(30, 0.5, 901)
        index = GeneralUncertainStringIndex(string, tau_min=0.1)
        probabilities = [
            occ.probability for occ in index.top_k(string.most_likely_string()[:2], 10)
        ]
        assert probabilities == sorted(probabilities, reverse=True)


class TestSpecialIndexTopK:
    def test_figure5_top_k(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        top = index.top_k("ana", 2)
        assert [occ.position for occ in top] == [3, 1]
        assert top[0].probability == pytest.approx(0.432)

    def test_matches_scan_ranking(self, random_special_string):
        string = random_special_string(50, 12)
        index = SpecialUncertainStringIndex(string)
        pattern = string.text[5:7]
        expected = sorted(
            (
                (string.occurrence_probability(pattern, position), position)
                for position in string.matching_positions(pattern, 1e-9)
            ),
            reverse=True,
        )
        got = index.top_k(pattern, 4)
        assert [occ.probability for occ in got] == pytest.approx(
            [probability for probability, _ in expected[:4]]
        )

    def test_invalid_k(self, figure5_special_string):
        with pytest.raises(ValidationError):
            SpecialUncertainStringIndex(figure5_special_string).top_k("a", -1)

    def test_pattern_longer_than_string(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        assert index.top_k("bananabanana", 2) == []
