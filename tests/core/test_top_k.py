"""Tests for the top-k most-probable-occurrence queries."""

import numpy as np
import pytest

from repro.core.base import top_values_above_threshold
from repro.core.baseline import BruteForceOracle
from repro.core.general_index import GeneralUncertainStringIndex
from repro.core.special_index import SpecialUncertainStringIndex
from repro.exceptions import ValidationError
from repro.suffix.rmq import SparseTableRMQ


class TestTopValuesHelper:
    def _top(self, values, left, right, k, threshold):
        array = np.asarray(values, dtype=np.float64)
        rmq = SparseTableRMQ(array)
        return top_values_above_threshold(
            rmq, array, left, right, k, threshold
        ).tolist()

    def test_returns_largest_first(self):
        values = [0.1, 0.9, 0.3, 0.7, 0.5]
        assert self._top(values, 0, 4, 3, 0.0) == [1, 3, 4]

    def test_respects_threshold(self):
        values = [0.1, 0.9, 0.3]
        assert self._top(values, 0, 2, 5, 0.2) == [1, 2]

    def test_respects_range(self):
        values = [0.9, 0.1, 0.8, 0.2]
        assert self._top(values, 1, 3, 2, 0.0) == [2, 3]

    def test_empty_inputs(self):
        values = [0.5]
        assert self._top(values, 1, 0, 3, 0.0) == []
        assert self._top(values, 0, 0, 0, 0.0) == []

    def test_include_ties_extends_past_k(self):
        values = [0.5, 0.9, 0.9, 0.9, 0.1]
        array = np.asarray(values, dtype=np.float64)
        rmq = SparseTableRMQ(array)
        truncated = top_values_above_threshold(rmq, array, 0, 4, 2, 0.0)
        assert len(truncated) == 2
        with_ties = top_values_above_threshold(
            rmq, array, 0, 4, 2, 0.0, include_ties=True
        )
        assert sorted(with_ties) == [1, 2, 3]  # the whole 0.9 tie class

    def test_include_ties_extraction_is_bounded(self):
        # A giant tie class must not degrade the heap path to O(occ): the
        # extraction stops at k + TIE_EXTRACTION_LIMIT entries.
        from repro.core.base import TIE_EXTRACTION_LIMIT

        array = np.ones(TIE_EXTRACTION_LIMIT * 4, dtype=np.float64)
        rmq = SparseTableRMQ(array)
        k = 3
        extracted = top_values_above_threshold(
            rmq, array, 0, len(array) - 1, k, 0.0, include_ties=True
        )
        assert len(extracted) == k + TIE_EXTRACTION_LIMIT

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_numpy_argsort(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(80)
        k = int(rng.integers(1, 15))
        got = self._top(values, 0, 79, k, 0.0)
        expected_values = sorted(values, reverse=True)[:k]
        assert [values[i] for i in got] == pytest.approx(expected_values)


class TestGeneralIndexTopK:
    def test_figure10_top_k(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        top = index.top_k("QP", 2)
        assert [occ.position for occ in top] == [0, 1]
        assert top[0].probability == pytest.approx(0.49)
        assert top[1].probability == pytest.approx(0.3)

    def test_k_one_returns_best(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        best = index.top_k("P", 1)[0]
        assert best.probability == pytest.approx(1.0)
        assert best.position == 2

    def test_invalid_k(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        with pytest.raises(ValidationError):
            index.top_k("P", 0)

    def test_absent_pattern(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        assert index.top_k("ZZ", 3) == []

    def test_tau_floor_applies(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        top = index.top_k("QP", 5, tau=0.4)
        assert [occ.position for occ in top] == [0]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_ranking(self, random_uncertain_string, seed):
        string = random_uncertain_string(25, 0.4, 500 + seed)
        index = GeneralUncertainStringIndex(string, tau_min=0.1)
        oracle = BruteForceOracle(string=string)
        backbone = string.most_likely_string()
        for pattern in (backbone[:1], backbone[2:5], backbone[4:8]):
            for k in (1, 3, 10):
                expected = sorted(
                    oracle.substring_occurrences(pattern, 0.1),
                    key=lambda occ: (-occ.probability, occ.position),
                )[:k]
                got = index.top_k(pattern, k)
                assert [occ.probability for occ in got] == pytest.approx(
                    [occ.probability for occ in expected]
                )

    def test_probabilities_are_non_increasing(self, random_uncertain_string):
        string = random_uncertain_string(30, 0.5, 901)
        index = GeneralUncertainStringIndex(string, tau_min=0.1)
        probabilities = [
            occ.probability for occ in index.top_k(string.most_likely_string()[:2], 10)
        ]
        assert probabilities == sorted(probabilities, reverse=True)


class TestSpecialIndexTopK:
    def test_figure5_top_k(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        top = index.top_k("ana", 2)
        assert [occ.position for occ in top] == [3, 1]
        assert top[0].probability == pytest.approx(0.432)

    def test_matches_scan_ranking(self, random_special_string):
        string = random_special_string(50, 12)
        index = SpecialUncertainStringIndex(string)
        pattern = string.text[5:7]
        expected = sorted(
            (
                (string.occurrence_probability(pattern, position), position)
                for position in string.matching_positions(pattern, 1e-9)
            ),
            reverse=True,
        )
        got = index.top_k(pattern, 4)
        assert [occ.probability for occ in got] == pytest.approx(
            [probability for probability, _ in expected[:4]]
        )

    def test_invalid_k(self, figure5_special_string):
        with pytest.raises(ValidationError):
            SpecialUncertainStringIndex(figure5_special_string).top_k("a", -1)

    def test_pattern_longer_than_string(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        assert index.top_k("bananabanana", 2) == []


class TestUnifiedSignature:
    """The top_k signature is the same across every index (ISSUE 1)."""

    def test_tau_defaults_to_none_everywhere(self, figure10_string, figure5_special_string):
        import inspect

        from repro.core.listing import UncertainStringListingIndex
        from repro.core.simple_index import SimpleSpecialIndex

        for cls in (
            GeneralUncertainStringIndex,
            SpecialUncertainStringIndex,
            UncertainStringListingIndex,
            SimpleSpecialIndex,
        ):
            parameter = inspect.signature(cls.top_k).parameters["tau"]
            assert parameter.default is None, cls
            assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, cls

    def test_special_default_matches_legacy_floor(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        assert index.top_k("ana", 3) == index.top_k("ana", 3, tau=1e-9)

    def test_general_default_matches_tau_min(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        assert index.top_k("P", 3) == index.top_k("P", 3, tau=0.1)

    def test_base_default_top_k_for_simple_index(self, figure5_special_string):
        from repro.core.simple_index import SimpleSpecialIndex

        simple = SimpleSpecialIndex(figure5_special_string)
        efficient = SpecialUncertainStringIndex(figure5_special_string)
        assert simple.top_k("ana", 2) == efficient.top_k("ana", 2)
        with pytest.raises(ValidationError):
            simple.top_k("ana", 0)

    def test_boundary_tau_agrees_across_substitutable_indexes(self):
        # An occurrence sitting exactly on tau is included by the RMQ fast
        # path (1e-12 tolerance); the base-class default must match, so the
        # planner can substitute simple for special without changing answers.
        from repro.core.simple_index import SimpleSpecialIndex
        from repro.strings import SpecialUncertainString

        string = SpecialUncertainString([("a", 0.5), ("b", 1.0)])
        special = SpecialUncertainStringIndex(string).top_k("ab", 5, tau=0.5)
        simple = SimpleSpecialIndex(string).top_k("ab", 5, tau=0.5)
        assert special == simple
        assert [occ.probability for occ in simple] == [pytest.approx(0.5)]


class TestListingIndexTopK:
    @pytest.fixture
    def collection_index(self):
        from repro.core.listing import UncertainStringListingIndex
        from repro.strings import UncertainString, UncertainStringCollection

        collection = UncertainStringCollection(
            [
                UncertainString([{"A": 0.9, "B": 0.1}, {"B": 0.8, "C": 0.2}]),
                UncertainString([{"A": 0.5, "B": 0.5}, {"B": 1.0}]),
                UncertainString([{"A": 1.0}, {"C": 1.0}]),
            ]
        )
        return UncertainStringListingIndex(collection, tau_min=0.05)

    def test_orders_by_decreasing_relevance(self, collection_index):
        top = collection_index.top_k("A", 3)
        relevances = [match.relevance for match in top]
        assert relevances == sorted(relevances, reverse=True)
        assert top[0].document == 2  # A certain at position 0

    def test_k_truncates(self, collection_index):
        assert len(collection_index.top_k("A", 2)) == 2
        assert len(collection_index.top_k("A", 10)) == 3

    def test_matches_full_query_ranking(self, collection_index):
        full = sorted(
            collection_index.query("B", 0.05),
            key=lambda match: (-match.relevance, match.document),
        )
        assert collection_index.top_k("B", len(full)) == full

    def test_tau_floor_filters(self, collection_index):
        top = collection_index.top_k("AB", 5, tau=0.6)
        assert all(match.relevance >= 0.6 for match in top)

    def test_absent_pattern(self, collection_index):
        assert collection_index.top_k("ZZ", 3) == []

    def test_invalid_k(self, collection_index):
        with pytest.raises(ValidationError):
            collection_index.top_k("A", 0)

    def test_long_pattern_fallback(self):
        from repro.core.listing import UncertainStringListingIndex
        from repro.strings import UncertainString, UncertainStringCollection

        documents = [
            UncertainString([{c: 1.0} for c in "abcabcabcabc"]),
            UncertainString([{c: 1.0} for c in "abcabc"]),
        ]
        index = UncertainStringListingIndex(
            UncertainStringCollection(documents), tau_min=0.5, max_short_length=2
        )
        top = index.top_k("abcabc", 2)
        assert [match.document for match in top] == [0, 1]

    def test_relevance_ties_break_by_document_id(self):
        # Four identical documents tie on relevance; the heap fast path must
        # keep the lowest document ids, matching the documented tie-break
        # (and the batch-derived ordering in repro.api.batch).
        from repro.core.listing import UncertainStringListingIndex
        from repro.strings import UncertainString, UncertainStringCollection

        documents = [
            UncertainString([{c: 1.0} for c in "AB"]) for _ in range(4)
        ]
        index = UncertainStringListingIndex(
            UncertainStringCollection(documents), tau_min=0.05
        )
        assert [match.document for match in index.top_k("A", 2, tau=0.1)] == [0, 1]
