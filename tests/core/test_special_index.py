"""Tests for repro.core.special_index (the Section 4.2 efficient index)."""

import pytest

from repro.core.simple_index import SimpleSpecialIndex
from repro.core.special_index import SpecialUncertainStringIndex
from repro.exceptions import PatternTooLongError, ValidationError
from repro.strings import CorrelationModel, CorrelationRule, SpecialUncertainString


class TestFigure5Example:
    def test_short_pattern_query(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        assert [occ.position for occ in index.query("ana", 0.3)] == [3]
        assert [occ.position for occ in index.query("ana", 0.2)] == [1, 3]
        assert [occ.position for occ in index.query("an", 0.3)] == [1, 3]

    def test_probabilities_match_string(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        for pattern in ("a", "an", "ana", "banana"):
            for occurrence in index.query(pattern, 0.01):
                assert occurrence.probability == pytest.approx(
                    figure5_special_string.occurrence_probability(
                        pattern, occurrence.position
                    )
                )


class TestConfiguration:
    def test_default_max_short_length(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        assert index.max_short_length == 3  # ceil(log2(7))

    def test_explicit_max_short_length_clamped_to_n(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string, max_short_length=100)
        assert index.max_short_length == len(figure5_special_string)

    def test_invalid_max_short_length(self, figure5_special_string):
        with pytest.raises(ValidationError):
            SpecialUncertainStringIndex(figure5_special_string, max_short_length=0)

    def test_invalid_long_pattern_mode(self, figure5_special_string):
        with pytest.raises(ValidationError):
            SpecialUncertainStringIndex(
                figure5_special_string, long_pattern_mode="explode"  # type: ignore[arg-type]
            )

    def test_block_lengths_registered(self, figure5_special_string):
        index = SpecialUncertainStringIndex(
            figure5_special_string, long_lengths=[5, 6, 99, 2]
        )
        # 2 is below max_short_length and 99 exceeds n: both ignored.
        assert index.block_lengths == (5, 6)

    def test_rmq_implementation_block(self, figure5_special_string):
        index = SpecialUncertainStringIndex(
            figure5_special_string, rmq_implementation="block"
        )
        assert [occ.position for occ in index.query("ana", 0.3)] == [3]

    def test_nbytes_positive(self, figure5_special_string):
        assert SpecialUncertainStringIndex(figure5_special_string).nbytes() > 0

    def test_tau_min_zero(self, figure5_special_string):
        assert SpecialUncertainStringIndex(figure5_special_string).tau_min == 0.0


class TestLongPatterns:
    def test_fallback_mode_answers_long_patterns(self, random_special_string):
        string = random_special_string(80, 5)
        index = SpecialUncertainStringIndex(string)
        pattern = string.text[10:40]  # length 30 > log2(80)
        assert len(pattern) > index.max_short_length
        expected = string.matching_positions(pattern, 0.001)
        assert [occ.position for occ in index.query(pattern, 0.001)] == expected

    def test_blocked_mode_matches_fallback(self, random_special_string):
        string = random_special_string(120, 9)
        pattern = string.text[17:37]
        length = len(pattern)
        blocked = SpecialUncertainStringIndex(string, long_lengths=[length])
        fallback = SpecialUncertainStringIndex(string)
        for tau in (0.0001, 0.001, 0.01):
            assert [occ.position for occ in blocked.query(pattern, tau)] == [
                occ.position for occ in fallback.query(pattern, tau)
            ]

    def test_error_mode_raises_for_long_patterns(self, random_special_string):
        string = random_special_string(64, 3)
        index = SpecialUncertainStringIndex(string, long_pattern_mode="error")
        with pytest.raises(PatternTooLongError):
            index.query(string.text[:20], 0.001)

    def test_block_mode_requires_registered_length(self, random_special_string):
        string = random_special_string(64, 4)
        index = SpecialUncertainStringIndex(
            string, long_pattern_mode="block", long_lengths=[10]
        )
        with pytest.raises(PatternTooLongError):
            index.query(string.text[:15], 0.001)

    def test_pattern_longer_than_string(self, figure5_special_string):
        index = SpecialUncertainStringIndex(figure5_special_string)
        assert index.query("bananabanana", 0.1) == []


class TestAgainstSimpleIndex:
    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_simple_index(self, random_special_string, seed):
        string = random_special_string(50 + seed, seed, alphabet="ABC")
        efficient = SpecialUncertainStringIndex(string, long_lengths=[8, 12])
        simple = SimpleSpecialIndex(string)
        for length in (1, 2, 3, 5, 8, 12):
            if length > len(string):
                continue
            start = (7 * seed) % (len(string) - length + 1)
            pattern = string.text[start : start + length]
            for tau in (0.05, 0.2, 0.5, 0.9):
                assert [occ.position for occ in efficient.query(pattern, tau)] == [
                    occ.position for occ in simple.query(pattern, tau)
                ], (pattern, tau)


class TestCorrelationHandling:
    def test_correlated_probabilities_used_in_rmq_path(self):
        string = SpecialUncertainString([("e", 0.6), ("q", 1.0), ("z", 0.3), ("q", 1.0)])
        correlations = CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.4)])
        index = SpecialUncertainStringIndex(string, correlations=correlations)
        # "qz" (partner outside window): mixture 0.34 > 0.33 threshold.
        occurrences = index.query("qz", 0.33)
        assert [occ.position for occ in occurrences] == [1]
        assert occurrences[0].probability == pytest.approx(0.34)
        # "eqz" (partner inside window, present): 0.6*1*0.3 = 0.18.
        occurrences = index.query("eqz", 0.15)
        assert [occ.position for occ in occurrences] == [0]
        assert occurrences[0].probability == pytest.approx(0.18)
