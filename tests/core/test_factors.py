"""Tests for repro.core.factors (maximal factors and the Lemma 2 transformation)."""

import math

import numpy as np
import pytest

from repro.core.factors import (
    MaximalFactor,
    TransformedString,
    enumerate_maximal_factors,
    transform_collection,
    transform_uncertain_string,
)
from repro.exceptions import ConstructionError, ValidationError
from repro.strings import UncertainString


class TestMaximalFactorDataclass:
    def test_probability_is_product(self):
        factor = MaximalFactor(0, "ab", (0.5, 0.4))
        assert factor.probability == pytest.approx(0.2)
        assert factor.length == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            MaximalFactor(0, "ab", (0.5,))

    def test_empty_factor_rejected(self):
        with pytest.raises(ValidationError):
            MaximalFactor(0, "", ())


class TestEnumerateMaximalFactors:
    def test_paper_figure3_maximal_factors_at_position_4(self, figure3_string):
        # Paper Section 5.1: the maximal factors of S at location 5 (1-based)
        # w.r.t. 0.15 are QPA, QPF, TPA, TPF.
        factors = enumerate_maximal_factors(figure3_string, 0.15, start=4)
        strings = sorted(factor.characters for factor in factors)
        assert strings == ["QPA", "QPF", "TPA", "TPF"]
        for factor in factors:
            assert factor.start == 4
            assert factor.probability >= 0.15

    def test_every_factor_is_maximal(self, figure3_string):
        tau_min = 0.15
        for factor in enumerate_maximal_factors(figure3_string, tau_min):
            end = factor.start + factor.length
            if end >= len(figure3_string):
                continue
            # No character at the next position can extend the factor while
            # keeping the probability >= tau_min.
            for character, probability in figure3_string[end]:
                assert factor.probability * probability < tau_min + 1e-12

    def test_factor_probabilities_match_string(self, figure3_string):
        for factor in enumerate_maximal_factors(figure3_string, 0.2):
            assert factor.probability == pytest.approx(
                figure3_string.occurrence_probability(factor.characters, factor.start),
                rel=1e-9,
            )

    def test_deterministic_string_has_single_factor_per_position(self):
        string = UncertainString.from_deterministic("abcd")
        factors = enumerate_maximal_factors(string, 0.5)
        assert len(factors) == 4
        assert [factor.characters for factor in factors] == ["abcd", "bcd", "cd", "d"]

    def test_start_argument(self, figure1_string):
        factors = enumerate_maximal_factors(figure1_string, 0.1, start=2)
        assert all(factor.start == 2 for factor in factors)

    def test_invalid_start_rejected(self, figure1_string):
        with pytest.raises(ValidationError):
            enumerate_maximal_factors(figure1_string, 0.1, start=9)

    def test_invalid_max_factor_length_rejected(self, figure1_string):
        with pytest.raises(ValidationError):
            enumerate_maximal_factors(figure1_string, 0.1, max_factor_length=0)

    def test_max_factor_length_caps_length(self, figure1_string):
        factors = enumerate_maximal_factors(figure1_string, 0.01, max_factor_length=2)
        assert factors
        assert all(factor.length <= 2 for factor in factors)

    def test_higher_threshold_gives_fewer_or_shorter_factors(self, figure1_string):
        low = enumerate_maximal_factors(figure1_string, 0.05)
        high = enumerate_maximal_factors(figure1_string, 0.5)
        assert sum(f.length for f in high) <= sum(f.length for f in low)

    def test_document_identifier_recorded(self, figure1_string):
        factors = enumerate_maximal_factors(figure1_string, 0.1, document=7)
        assert all(factor.document == 7 for factor in factors)

    def test_conservation_property(self, random_uncertain_string):
        # Every substring with probability >= tau_min starting at i is a
        # prefix of some maximal factor starting at i (Lemma 2).
        string = random_uncertain_string(25, 0.5, 11)
        tau_min = 0.1
        factors_by_start = {}
        for factor in enumerate_maximal_factors(string, tau_min):
            factors_by_start.setdefault(factor.start, []).append(factor.characters)
        backbone = string.most_likely_string()
        for start in range(len(string)):
            for length in range(1, min(6, len(string) - start) + 1):
                pattern = backbone[start : start + length]
                if string.occurrence_probability(pattern, start) >= tau_min:
                    assert any(
                        candidate.startswith(pattern)
                        for candidate in factors_by_start.get(start, [])
                    ), (pattern, start)


class TestTransformedString:
    def test_transformation_layout(self, figure10_string):
        transformed = transform_uncertain_string(figure10_string, 0.1)
        # Text is factors separated (and terminated) by the separator.
        assert transformed.text.endswith(transformed.separator)
        assert transformed.factor_count == len(transformed.factors)
        assert transformed.length == len(transformed.text)
        assert transformed.source_length == 4
        assert transformed.document_count == 1
        assert transformed.expansion_ratio == pytest.approx(
            transformed.length / 4
        )

    def test_positions_alignment(self, figure10_string):
        transformed = transform_uncertain_string(figure10_string, 0.1)
        for index, character in enumerate(transformed.text):
            if character == transformed.separator:
                assert transformed.positions[index] == -1
                assert transformed.probabilities[index] == 1.0
            else:
                original = int(transformed.positions[index])
                assert 0 <= original < 4
                # The character at this transformed position is one of the
                # probable characters at the original position.
                assert character in figure10_string[original].characters
                assert transformed.probabilities[index] == pytest.approx(
                    figure10_string[original].probability(character)
                )

    def test_window_probabilities_match_original(self, figure3_string):
        transformed = transform_uncertain_string(figure3_string, 0.15)
        probabilities = transformed.probabilities
        # Pick a factor and check an inner window equals the original
        # occurrence probability.
        factor = transformed.factors[0]
        offset = transformed.text.index(factor.characters)
        window = factor.characters[:2]
        value = float(np.prod(probabilities[offset : offset + 2]))
        assert value == pytest.approx(
            figure3_string.occurrence_probability(window, factor.start)
        )

    def test_to_special_string(self, figure10_string):
        transformed = transform_uncertain_string(figure10_string, 0.1)
        special = transformed.to_special_string()
        assert special.text == transformed.text
        assert len(special) == transformed.length

    def test_conservation_of_probable_substrings(self, random_uncertain_string):
        string = random_uncertain_string(20, 0.4, 3)
        tau_min = 0.1
        transformed = transform_uncertain_string(string, tau_min)
        backbone = string.most_likely_string()
        for start in range(len(string)):
            for length in (1, 2, 3, 4):
                if start + length > len(string):
                    continue
                pattern = backbone[start : start + length]
                if string.occurrence_probability(pattern, start) >= tau_min:
                    assert pattern in transformed.text

    def test_empty_factor_list_rejected(self):
        # When no position can reach tau_min the transformation has nothing
        # to index and must fail loudly rather than build an empty structure.
        with pytest.raises(ConstructionError):
            TransformedString([], tau_min=0.1, source_length=1)

    def test_transformation_fails_when_every_character_below_threshold(self):
        string = UncertainString.from_table([{"a": 0.5, "b": 0.5}])
        with pytest.raises(ConstructionError):
            transform_uncertain_string(string, 0.9)

    def test_separator_collision_rejected(self, figure10_string):
        with pytest.raises(ConstructionError):
            transform_uncertain_string(figure10_string, 0.1, separator="P")

    def test_invalid_separator_rejected(self, figure10_string):
        with pytest.raises(ValidationError):
            transform_uncertain_string(figure10_string, 0.1, separator="##")

    def test_nbytes_positive(self, figure10_string):
        assert transform_uncertain_string(figure10_string, 0.1).nbytes() > 0


class TestTransformCollection:
    def test_documents_recorded(self, figure2_collection):
        transformed = transform_collection(figure2_collection, 0.05)
        assert transformed.document_count == 3
        assert transformed.source_length == figure2_collection.total_positions
        documents_seen = set(int(d) for d in transformed.documents if d >= 0)
        assert documents_seen == {0, 1, 2}

    def test_positions_are_document_offsets(self, figure2_collection):
        transformed = transform_collection(figure2_collection, 0.05)
        for index, character in enumerate(transformed.text):
            document = int(transformed.documents[index])
            position = int(transformed.positions[index])
            if document < 0:
                continue
            assert 0 <= position < len(figure2_collection[document])
            assert character in figure2_collection[document][position].characters
