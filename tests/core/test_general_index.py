"""Tests for repro.core.general_index (Section 5 substring searching)."""

import numpy as np
import pytest

from repro.core.baseline import BruteForceOracle
from repro.core.general_index import (
    GeneralUncertainStringIndex,
    deduplicate_by_position,
    partition_identifiers,
)
from repro.exceptions import PatternTooLongError, ThresholdError, ValidationError
from repro.strings import CorrelationModel, CorrelationRule, UncertainString


class TestPartitionHelpers:
    def test_partition_identifiers_split_at_small_lcp(self):
        lcp = np.asarray([0, 2, 1, 3, 0])
        assert partition_identifiers(lcp, 2).tolist() == [0, 0, 1, 1, 2]
        assert partition_identifiers(lcp, 1).tolist() == [0, 0, 0, 0, 1]

    def test_partition_identifiers_invalid_length(self):
        with pytest.raises(ValidationError):
            partition_identifiers(np.asarray([0, 1]), 0)

    def test_deduplicate_keeps_one_entry_per_position(self):
        values = np.asarray([0.5, 0.5, 0.4, 0.9, 0.9], dtype=float)
        partitions = np.asarray([0, 0, 0, 1, 1])
        positions = np.asarray([7, 7, 3, 2, 2])
        deduplicated = deduplicate_by_position(np.log(values), partitions, positions)
        finite = np.isfinite(deduplicated)
        # Partition 0 keeps positions {7, 3} once each; partition 1 keeps {2}.
        assert finite.sum() == 3
        assert finite[2]  # the only copy of position 3 survives

    def test_deduplicate_masks_separator_positions(self):
        values = np.log(np.asarray([0.5, 0.6], dtype=float))
        deduplicated = deduplicate_by_position(
            values, np.asarray([0, 0]), np.asarray([-1, 4])
        )
        assert not np.isfinite(deduplicated[0])
        assert np.isfinite(deduplicated[1])

    def test_same_position_in_different_partitions_kept(self):
        values = np.log(np.asarray([0.5, 0.6], dtype=float))
        deduplicated = deduplicate_by_position(
            values, np.asarray([0, 1]), np.asarray([4, 4])
        )
        assert np.isfinite(deduplicated).all()


class TestFigure10RunningExample:
    def test_qp_query(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        # Appendix B: query ("QP", 0.4) outputs position 1 (1-based) = 0 with
        # probability 0.49.
        occurrences = index.query("QP", 0.4)
        assert [occ.position for occ in occurrences] == [0]
        assert occurrences[0].probability == pytest.approx(0.49)

    def test_qp_query_lower_threshold_adds_position_1(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        # Position 1 has QP with probability 0.3 * 1.0 = 0.3, so it appears
        # below 0.3 and disappears above it.
        assert [occ.position for occ in index.query("QP", 0.2)] == [0, 1]
        assert [occ.position for occ in index.query("QP", 0.35)] == [0]

    def test_no_duplicate_positions_reported(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        for pattern in ("P", "Q", "QP", "PP", "PA"):
            for tau in (0.1, 0.2, 0.4):
                positions = [occ.position for occ in index.query(pattern, tau)]
                assert len(positions) == len(set(positions)), (pattern, tau)


class TestQueryValidation:
    def test_threshold_below_tau_min_rejected(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.2)
        with pytest.raises(ThresholdError):
            index.query("QP", 0.1)

    def test_empty_pattern_rejected(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        with pytest.raises(ValidationError):
            index.query("", 0.5)

    def test_pattern_longer_than_string_returns_empty(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        assert index.query("QPPAQPPA", 0.5) == []

    def test_absent_pattern_returns_empty(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        assert index.query("ZZ", 0.5) == []

    def test_invalid_long_pattern_mode(self, figure10_string):
        with pytest.raises(ValidationError):
            GeneralUncertainStringIndex(
                figure10_string, tau_min=0.1, long_pattern_mode="nope"  # type: ignore[arg-type]
            )

    def test_tau_min_property(self, figure10_string):
        assert GeneralUncertainStringIndex(figure10_string, tau_min=0.15).tau_min == 0.15


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_bruteforce_for_random_strings(self, random_uncertain_string, seed):
        string = random_uncertain_string(30, 0.4, seed)
        tau_min = 0.1
        index = GeneralUncertainStringIndex(string, tau_min=tau_min)
        oracle = BruteForceOracle(string=string)
        backbone = string.most_likely_string()
        rng = np.random.default_rng(seed)
        for _ in range(10):
            length = int(rng.integers(1, 7))
            start = int(rng.integers(0, len(string) - length + 1))
            pattern = backbone[start : start + length]
            tau = float(rng.uniform(tau_min, 0.9))
            expected = oracle.substring_occurrences(pattern, tau)
            got = index.query(pattern, tau)
            assert [occ.position for occ in got] == [occ.position for occ in expected]
            for got_occ, expected_occ in zip(got, expected):
                assert got_occ.probability == pytest.approx(expected_occ.probability)

    def test_long_pattern_fallback_matches_oracle(self, random_uncertain_string):
        string = random_uncertain_string(60, 0.2, 77)
        index = GeneralUncertainStringIndex(string, tau_min=0.1)
        backbone = string.most_likely_string()
        pattern = backbone[5:45]  # well beyond max_short_length
        assert len(pattern) > index.max_short_length
        oracle = BruteForceOracle(string=string)
        assert [occ.position for occ in index.query(pattern, 0.1)] == [
            occ.position for occ in oracle.substring_occurrences(pattern, 0.1)
        ]

    def test_blocked_long_pattern_matches_oracle(self, random_uncertain_string):
        string = random_uncertain_string(60, 0.2, 78)
        backbone = string.most_likely_string()
        pattern = backbone[3:33]
        index = GeneralUncertainStringIndex(
            string, tau_min=0.1, long_lengths=[len(pattern)]
        )
        assert len(pattern) in index.block_lengths
        oracle = BruteForceOracle(string=string)
        assert [occ.position for occ in index.query(pattern, 0.1)] == [
            occ.position for occ in oracle.substring_occurrences(pattern, 0.1)
        ]

    def test_block_mode_raises_without_structure(self, random_uncertain_string):
        # A deterministic string guarantees the long pattern exists in the
        # transformed text, so the query reaches the long-pattern dispatch.
        string = random_uncertain_string(40, 0.0, 79)
        index = GeneralUncertainStringIndex(
            string, tau_min=0.1, long_pattern_mode="block"
        )
        pattern = string.most_likely_string()[:20]
        with pytest.raises(PatternTooLongError):
            index.query(pattern, 0.2)

    def test_error_mode_raises(self, random_uncertain_string):
        string = random_uncertain_string(40, 0.0, 80)
        index = GeneralUncertainStringIndex(
            string, tau_min=0.1, long_pattern_mode="error"
        )
        with pytest.raises(PatternTooLongError):
            index.query(string.most_likely_string()[:20], 0.2)

    def test_sparse_rmq_variant_matches_oracle(self, random_uncertain_string):
        string = random_uncertain_string(25, 0.4, 81)
        index = GeneralUncertainStringIndex(
            string, tau_min=0.1, rmq_implementation="sparse"
        )
        oracle = BruteForceOracle(string=string)
        pattern = string.most_likely_string()[2:6]
        assert [occ.position for occ in index.query(pattern, 0.15)] == [
            occ.position for occ in oracle.substring_occurrences(pattern, 0.15)
        ]


class TestCorrelatedStrings:
    @pytest.fixture
    def correlated_string(self):
        return UncertainString(
            [
                {"e": 0.6, "f": 0.4},
                {"q": 1.0},
                {"z": 0.7, "w": 0.3},
                {"a": 0.5, "b": 0.5},
            ],
            correlations=CorrelationModel([CorrelationRule(2, "z", 0, "e", 0.3, 0.9)]),
        )

    def test_correlated_queries_match_oracle(self, correlated_string):
        index = GeneralUncertainStringIndex(correlated_string, tau_min=0.05)
        oracle = BruteForceOracle(string=correlated_string)
        for pattern in ("eqz", "fqz", "qz", "za", "qzb", "e"):
            for tau in (0.06, 0.1, 0.2, 0.4):
                expected = oracle.substring_occurrences(pattern, tau)
                got = index.query(pattern, tau)
                assert [occ.position for occ in got] == [
                    occ.position for occ in expected
                ], (pattern, tau)
                for got_occ, expected_occ in zip(got, expected):
                    assert got_occ.probability == pytest.approx(
                        expected_occ.probability
                    )


class TestMetadata:
    def test_stats_and_space_report(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        stats = index.stats
        assert stats["source_length"] == 4
        assert stats["transformed_length"] == index.transformed.length
        report = index.space_report()
        assert report["total"] == sum(
            value
            for key, value in report.items()
            if key not in ("total", "total_wide")
        )
        assert report["total_wide"] >= report["total"]
        assert index.nbytes() == report["total"]

    def test_string_and_transformed_accessors(self, figure10_string):
        index = GeneralUncertainStringIndex(figure10_string, tau_min=0.1)
        assert index.string is figure10_string
        assert index.transformed.tau_min == pytest.approx(0.1)
