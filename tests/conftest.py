"""Shared fixtures and data builders for the test suite.

Several fixtures reproduce the worked examples of the paper (Figures 1, 2, 3
and 10) so tests can assert against numbers that appear in the text; the
``random_uncertain_string`` / ``random_special_string`` factories provide
reproducible randomized inputs for oracle-comparison tests.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

import pytest

from repro.strings import (
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)

#: Small alphabet used by the randomized tests (keeps suffix ranges busy).
TEST_ALPHABET = "ABCD"


@pytest.fixture(autouse=True)
def _reset_planner_calibration():
    """Isolate tests from the planner's process-global calibration state.

    Every ``build_index`` records an observed-vs-estimated size ratio into
    the per-kind calibration corrections; without a reset, a test's
    estimates would depend on which tests ran before it.
    """
    from repro.api.planner import reset_calibration

    reset_calibration()
    yield
    reset_calibration()


def make_random_uncertain_string(
    length: int,
    theta: float,
    seed: int,
    *,
    alphabet: str = TEST_ALPHABET,
    max_choices: int = 3,
) -> UncertainString:
    """Build a random uncertain string with ``theta`` fraction of uncertain positions."""
    rng = random.Random(seed)
    rows: List[Dict[str, float]] = []
    for _ in range(length):
        if rng.random() < theta:
            count = rng.randint(2, min(max_choices, len(alphabet)))
            characters = rng.sample(alphabet, count)
            weights = [rng.random() + 0.05 for _ in characters]
            total = sum(weights)
            rows.append({c: w / total for c, w in zip(characters, weights)})
        else:
            rows.append({rng.choice(alphabet): 1.0})
    return UncertainString.from_table(rows)


def make_random_special_string(
    length: int,
    seed: int,
    *,
    alphabet: str = "AB",
    min_probability: float = 0.3,
) -> SpecialUncertainString:
    """Build a random special uncertain string over a small alphabet."""
    rng = random.Random(seed)
    return SpecialUncertainString(
        [
            (rng.choice(alphabet), rng.uniform(min_probability, 1.0))
            for _ in range(length)
        ]
    )


@pytest.fixture
def random_uncertain_string() -> Callable[..., UncertainString]:
    """Factory fixture for random uncertain strings."""
    return make_random_uncertain_string


@pytest.fixture
def random_special_string() -> Callable[..., SpecialUncertainString]:
    """Factory fixture for random special uncertain strings."""
    return make_random_special_string


@pytest.fixture
def figure1_string() -> UncertainString:
    """The uncertain string of the paper's Figure 1(a)."""
    return UncertainString(
        [
            {"a": 0.3, "b": 0.4, "d": 0.3},
            {"a": 0.6, "c": 0.4},
            {"d": 1.0},
            {"a": 0.5, "c": 0.5},
            {"a": 1.0},
        ]
    )


@pytest.fixture
def figure2_collection() -> UncertainStringCollection:
    """The three-document collection of the paper's Figure 2."""
    d1 = UncertainString(
        [
            {"A": 0.4, "B": 0.3, "F": 0.3},
            {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
            {"F": 0.5, "J": 0.5},
        ],
        name="d1",
    )
    d2 = UncertainString(
        [
            {"A": 0.6, "C": 0.4},
            {"B": 0.5, "F": 0.3, "J": 0.2},
            {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
        ],
        name="d2",
    )
    d3 = UncertainString(
        [
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "P": 0.3, "T": 0.1},
            {"A": 1.0},
        ],
        name="d3",
    )
    return UncertainStringCollection([d1, d2, d3])


@pytest.fixture
def figure3_string() -> UncertainString:
    """The At4g15440 protein string of the paper's Figure 3."""
    return UncertainString(
        [
            {"P": 1.0},
            {"S": 0.7, "F": 0.3},
            {"F": 1.0},
            {"P": 1.0},
            {"Q": 0.5, "T": 0.5},
            {"P": 1.0},
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "T": 0.3, "P": 0.1},
            {"A": 1.0},
            {"S": 0.5, "T": 0.5},
            {"A": 1.0},
        ]
    )


@pytest.fixture
def figure5_special_string() -> SpecialUncertainString:
    """The (banana, probabilities) special string of the paper's Figure 5."""
    return SpecialUncertainString(
        [("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6)]
    )


@pytest.fixture
def figure10_string() -> UncertainString:
    """The four-position string of the paper's Figure 10 running example."""
    return UncertainString(
        [
            {"Q": 0.7, "S": 0.3},
            {"Q": 0.3, "P": 0.7},
            {"P": 1.0},
            {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
        ]
    )
