"""Engine façade: unified vocabulary, laziness, batching, introspection."""

import pytest

from repro.api import SearchRequest, SearchResult, build_index
from repro.core.base import Occurrence
from repro.exceptions import ValidationError
from repro.strings import UncertainString


@pytest.fixture
def figure3_engine():
    string = UncertainString(
        [
            {"P": 1.0},
            {"S": 0.7, "F": 0.3},
            {"F": 1.0},
            {"P": 1.0},
            {"Q": 0.5, "T": 0.5},
            {"P": 1.0},
            {"A": 0.4, "F": 0.4, "P": 0.2},
            {"I": 0.3, "L": 0.3, "T": 0.3, "P": 0.1},
            {"A": 1.0},
            {"S": 0.5, "T": 0.5},
            {"A": 1.0},
        ],
        name="At4g15440",
    )
    return build_index(string, tau_min=0.1)


@pytest.fixture
def listing_engine():
    documents = [
        UncertainString([{"A": 0.9, "B": 0.1}, {"B": 0.8, "C": 0.2}]),
        UncertainString([{"A": 0.5, "B": 0.5}, {"B": 1.0}]),
        UncertainString([{"C": 1.0}, {"C": 1.0}]),
    ]
    return build_index(documents, tau_min=0.05)


class TestSearchRequest:
    def test_validation(self):
        with pytest.raises(ValidationError):
            SearchRequest("")
        with pytest.raises(ValidationError):
            SearchRequest("a", tau=1.5)
        with pytest.raises(ValidationError):
            SearchRequest("a", top_k=0)

    def test_coerce_overrides(self):
        base = SearchRequest("ab", tau=0.2)
        assert SearchRequest.coerce(base) is base
        overridden = SearchRequest.coerce(base, top_k=5)
        assert overridden.tau == pytest.approx(0.2)
        assert overridden.top_k == 5

    def test_resolve_tau_default(self):
        assert SearchRequest("a").resolve_tau(0.1) == pytest.approx(0.1)
        assert SearchRequest("a", tau=0.4).resolve_tau(0.1) == pytest.approx(0.4)


class TestSearchResult:
    def test_lazy_until_touched(self, figure3_engine):
        result = figure3_engine.search("PA", tau=0.1)
        assert isinstance(result, SearchResult)
        assert not result.evaluated
        assert result.count == 1
        assert result.evaluated

    def test_sequence_protocol(self, figure3_engine):
        result = figure3_engine.search("PA", tau=0.1)
        assert len(result) == 1
        assert isinstance(result[0], Occurrence)
        assert [occ.position for occ in result] == [5]

    def test_paging(self, figure3_engine):
        result = figure3_engine.search("P", tau=0.1)
        matches = result.matches
        assert len(matches) >= 3
        assert result.page(0, 2) == matches[:2]
        assert result.page(2) == matches[2:]
        pages = list(result.pages(2))
        assert [m for page in pages for m in page] == matches
        with pytest.raises(ValidationError):
            result.page(-1)
        with pytest.raises(ValidationError):
            list(result.pages(0))

    def test_positions_helper(self, figure3_engine, listing_engine):
        assert figure3_engine.search("PA", tau=0.1).positions() == [5]
        assert listing_engine.search("AB", tau=0.6).positions() == [0]


class TestEngineQueries:
    def test_query_top_k_count_exists(self, figure3_engine):
        assert figure3_engine.count("P", tau=0.1) == figure3_engine.index.count("P", 0.1)
        assert figure3_engine.exists("PA", tau=0.1)
        assert not figure3_engine.exists("PAQQ", tau=0.1)
        top = figure3_engine.top_k("P", 2)
        assert len(top) == 2
        assert top[0].probability >= top[1].probability

    def test_search_with_top_k(self, figure3_engine):
        result = figure3_engine.search("P", top_k=2)
        assert result.count == 2
        assert result.matches == figure3_engine.top_k("P", 2)

    def test_listing_engine_vocabulary(self, listing_engine):
        matches = listing_engine.search("AB", tau=0.6).matches
        assert [m.document for m in matches] == [0]
        top = listing_engine.top_k("B", 2)
        assert len(top) == 2
        assert top[0].relevance >= top[1].relevance

    def test_describe_and_space(self, figure3_engine):
        description = figure3_engine.describe()
        assert description["kind"] == "general"
        assert description["reason"]
        assert description["space_report"]["total"] == figure3_engine.nbytes()
        assert figure3_engine.nbytes() > 0


class TestSearchMany:
    def test_results_in_request_order(self, figure3_engine):
        results = figure3_engine.search_many(["PA", "AT", "ZZ"], tau=0.2)
        assert [r.request.pattern for r in results] == ["PA", "AT", "ZZ"]
        assert [r.count for r in results] == [1, 1, 0]

    def test_matches_direct_queries(self, figure3_engine):
        requests = [
            SearchRequest("PA", tau=0.1),
            SearchRequest("PA", tau=0.3),
            SearchRequest("P", tau=0.5),
            SearchRequest("PA", top_k=1, tau=0.2),
            SearchRequest("AT", tau=0.4),
        ]
        results = figure3_engine.search_many(requests)
        for request, result in zip(requests, results):
            if request.top_k is not None:
                expected = figure3_engine.index.top_k(
                    request.pattern, request.top_k, tau=request.tau
                )
            else:
                expected = figure3_engine.index.query(
                    request.pattern, request.resolve_tau(figure3_engine.tau_min)
                )
            assert result.matches == expected

    def test_identical_requests_share_one_result(self, figure3_engine):
        results = figure3_engine.search_many(
            [SearchRequest("PA", tau=0.2), SearchRequest("PA", tau=0.2)]
        )
        assert results[0] is results[1]

    def test_batch_is_lazy(self, figure3_engine):
        results = figure3_engine.search_many(["PA", "AT"])
        assert not any(result.evaluated for result in results)
        results[0].matches
        assert results[0].evaluated
        assert not results[1].evaluated

    def test_substring_engines_evaluate_each_threshold_directly(self, figure3_engine):
        # Substring indexes compare in log space, so threshold refinement is
        # off for them (see repro.api.batch); each distinct request runs
        # directly and matches a direct query exactly.
        low, high = figure3_engine.search_many(
            [SearchRequest("P", tau=0.1), SearchRequest("P", tau=0.9)]
        )
        assert high.matches == figure3_engine.index.query("P", 0.9)
        assert not low.evaluated
        assert low.matches == figure3_engine.index.query("P", 0.1)

    def test_listing_refinement_derives_from_lowest_threshold(self, listing_engine):
        low, high = listing_engine.search_many(
            [SearchRequest("B", tau=0.05), SearchRequest("B", tau=0.6)]
        )
        # Touch only the refined result: the base evaluation must run too.
        assert high.matches == listing_engine.index.query("B", 0.6)
        assert low.evaluated

    def test_invalid_tau_request_does_not_poison_the_batch(self, listing_engine):
        from repro.exceptions import ThresholdError

        bad, good = listing_engine.search_many(
            [SearchRequest("B", tau=0.01), SearchRequest("B", tau=0.3)]
        )
        # The valid request answers correctly even though a same-pattern
        # request with tau below tau_min sits in the batch...
        assert good.matches == listing_engine.index.query("B", 0.3)
        # ...and only the offending request fails, on its own evaluation.
        with pytest.raises(ThresholdError):
            bad.matches

    def test_log_space_boundary_taus_match_direct(self):
        # Regression: taus exactly equal to a reported probability must get
        # the same answer batched and direct (the reason refinement is
        # restricted to the listing index).
        string = UncertainString([{"A": 0.0125, "C": 0.9875}, {"T": 1.0}])
        engine = build_index(string, tau_min=0.01)
        for tau in (0.0125, 0.01):
            direct = engine.search(SearchRequest("AT", tau=tau)).matches
            batched = engine.search_many(
                [SearchRequest("AT", tau=0.01), SearchRequest("AT", tau=tau)]
            )[1].matches
            assert direct == batched

    def test_approximate_engine_batches_without_refinement(self):
        string = UncertainString(
            [
                {"Q": 0.7, "S": 0.3},
                {"Q": 0.3, "P": 0.7},
                {"P": 1.0},
                {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
            ]
        )
        engine = build_index(string, tau_min=0.1, epsilon=0.05)
        requests = [SearchRequest("QP", tau=0.2), SearchRequest("QP", tau=0.45)]
        results = engine.search_many(requests)
        for request, result in zip(requests, results):
            assert result.matches == engine.index.query(
                request.pattern, request.tau
            )

    def test_correlated_listing_engine_skips_refinement(self):
        # Correlated collections re-verify candidates; a filter over the
        # reported relevance cannot reproduce the pre-verification pruning,
        # so such engines must evaluate each request directly.
        from repro.strings import CorrelationModel, CorrelationRule, UncertainStringCollection

        documents = [
            UncertainString(
                [{"A": 0.6, "B": 0.4}, {"A": 0.5, "B": 0.5}],
                correlations=CorrelationModel(
                    [CorrelationRule(1, "A", 0, "A", 0.9, 0.2)]
                ),
            ),
            UncertainString([{"A": 0.7, "B": 0.3}, {"A": 0.4, "B": 0.6}]),
        ]
        engine = build_index(UncertainStringCollection(documents), tau_min=0.1)
        assert engine.index.needs_verification
        for tau in (0.3, 0.5):
            direct = engine.search(SearchRequest("AA", tau=tau)).matches
            batched = engine.search_many(
                [SearchRequest("AA", tau=0.1), SearchRequest("AA", tau=tau)]
            )[1].matches
            assert direct == batched

    def test_listing_refinement(self, listing_engine):
        requests = [SearchRequest("B", tau=0.05), SearchRequest("B", tau=0.6)]
        low, high = listing_engine.search_many(requests)
        assert high.matches == listing_engine.index.query("B", 0.6)
        assert low.matches == listing_engine.index.query("B", 0.05)


class TestPlannerFeedback:
    """Observed-vs-estimated size feedback recorded at build time."""

    def test_estimate_error_recorded_for_general(self, figure3_string):
        engine = build_index(figure3_string, tau_min=0.1)
        plan_info = engine.describe()["plan"]
        error = plan_info["estimate_error"]
        assert error is not None
        assert error["observed_bytes"] == engine.nbytes()
        assert error["estimated_bytes"] == engine.plan.profile["estimated_bytes"]
        assert error["ratio"] == pytest.approx(
            error["observed_bytes"] / error["estimated_bytes"]
        )
        import math

        assert error["log2_error"] == pytest.approx(math.log2(error["ratio"]))

    def test_estimate_error_recorded_for_listing(self):
        engine = build_index(["banana", "ananas", "bandana"], tau_min=0.1)
        error = engine.describe()["plan"]["estimate_error"]
        assert error is not None
        assert error["observed_bytes"] > 0

    def test_observed_bytes_always_recorded(self):
        engine = build_index("banana" * 4)
        assert engine.plan.profile["observed_bytes"] == engine.nbytes()

    def test_restored_plan_has_no_estimate_error(self, tmp_path, figure3_string):
        engine = build_index(figure3_string, tau_min=0.1)
        path = engine.save(tmp_path / "fb")
        from repro.api import load_index

        loaded = load_index(path)
        # The archive round-trips the profile, so the recorded feedback
        # survives; a hand-made plan (no estimate) reports None.
        assert loaded.describe()["plan"]["estimate_error"] is not None

    def test_sharded_plan_records_ensemble_total(self):
        from repro.api import build_sharded_index

        engine = build_sharded_index("banana" * 20, shards=3, max_pattern_len=6)
        error = engine.describe()["plan"]["estimate_error"]
        assert error is not None
        assert error["observed_bytes"] == engine.nbytes()
        engine.close()
