"""Save/load round-trips: loaded indexes answer byte-identically."""

import json
import random

import numpy as np
import pytest

from repro.api import (
    FORMAT_NAME,
    FORMAT_VERSION,
    build_index,
    build_sharded_index,
    is_sharded_archive,
    load_index,
    load_index_payload,
    read_manifest,
    read_sharded_manifest,
    save_index_payload,
)
from repro.api.sharding import ShardedEngine
from repro.bench import workloads
from repro.exceptions import ValidationError
from repro.strings import (
    CorrelationModel,
    CorrelationRule,
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)
from tests.conftest import make_random_special_string, make_random_uncertain_string


@pytest.fixture
def general_string():
    return UncertainString(
        [
            {"Q": 0.7, "S": 0.3},
            {"Q": 0.3, "P": 0.7},
            {"P": 1.0},
            {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
        ],
        name="figure10",
    )


def _assert_same_answers(engine, loaded, patterns, taus):
    for pattern in patterns:
        for tau in taus:
            assert engine.query(pattern, tau=tau) == loaded.query(pattern, tau=tau)
        assert engine.top_k(pattern, 3) == loaded.top_k(pattern, 3)


class TestRoundTrips:
    def test_special_round_trip(self, tmp_path):
        string = SpecialUncertainString(
            [("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6)],
            name="banana",
        )
        engine = build_index(string)
        loaded = load_index(engine.save(tmp_path / "special"))
        _assert_same_answers(engine, loaded, ["a", "ana", "ban", "zzz"], [0.1, 0.3, 0.7])
        assert loaded.kind == "special"
        assert loaded.index.string.name == "banana"

    def test_simple_round_trip(self, tmp_path):
        engine = build_index("banana" * 4, space_budget_bytes=10)
        assert engine.kind == "simple"
        loaded = load_index(engine.save(tmp_path / "simple"))
        _assert_same_answers(engine, loaded, ["ana", "nab", "q"], [0.2, 0.8])

    def test_general_round_trip(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        loaded = load_index(engine.save(tmp_path / "general"))
        _assert_same_answers(
            engine, loaded, ["QP", "PP", "P", "QPP", "ZZ"], [0.1, 0.25, 0.4]
        )
        assert loaded.index.transformed.text == engine.index.transformed.text
        assert loaded.index.tau_min == engine.index.tau_min

    def test_approximate_round_trip(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1, epsilon=0.05)
        loaded = load_index(engine.save(tmp_path / "approx"))
        _assert_same_answers(engine, loaded, ["QP", "PP", "P"], [0.1, 0.3])
        assert loaded.index.link_count == engine.index.link_count
        assert loaded.index.epsilon == engine.index.epsilon
        # Verified (exact) answers survive too.
        assert loaded.index.query("QP", 0.4, verify=True) == engine.index.query(
            "QP", 0.4, verify=True
        )

    def test_listing_round_trip(self, tmp_path):
        collection = UncertainStringCollection(
            [
                UncertainString(
                    [
                        {"A": 0.4, "B": 0.3, "F": 0.3},
                        {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
                        {"F": 0.5, "J": 0.5},
                    ],
                    name="d1",
                ),
                UncertainString(
                    [
                        {"A": 0.6, "C": 0.4},
                        {"B": 0.5, "F": 0.3, "J": 0.2},
                        {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
                    ],
                    name="d2",
                ),
            ]
        )
        engine = build_index(collection, tau_min=0.05, metric="or")
        loaded = load_index(engine.save(tmp_path / "listing"))
        _assert_same_answers(engine, loaded, ["BF", "A", "F"], [0.05, 0.1, 0.5])
        assert loaded.index.metric == "or"
        assert loaded.index.collection.name_of(1) == "d2"

    def test_correlated_general_round_trip(self, tmp_path):
        string = UncertainString(
            [{"e": 0.6, "f": 0.4}, {"a": 1.0}, {"z": 0.5, "x": 0.5}],
            correlations=CorrelationModel(
                [CorrelationRule(2, "z", 0, "e", 0.3, 0.7)]
            ),
        )
        engine = build_index(string, tau_min=0.1)
        loaded = load_index(engine.save(tmp_path / "correlated"))
        assert bool(loaded.index.string.correlations)
        _assert_same_answers(engine, loaded, ["az", "eaz", "faz"], [0.1, 0.2])

    def test_loaded_plan_mentions_archive(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        loaded = load_index(engine.save(tmp_path / "plan-check"))
        assert "plan-check.npz" in loaded.plan.reason
        assert loaded.plan.kind == "general"


class TestBenchmarkWorkloadRoundTrip:
    """Acceptance: saved-then-loaded index is byte-identical on the synthetic
    benchmark workload."""

    def test_substring_workload_round_trip(self, tmp_path):
        workloads.clear_caches()
        work = workloads.substring_workload(
            300, 0.3, tau_min=0.1, query_lengths=(4, 8), patterns_per_length=3
        )
        path = work.engine.save(tmp_path / "bench-substring")
        loaded = load_index(path)
        for pattern in work.patterns:
            for tau in (0.1, 0.2, 0.5):
                before = work.engine.query(pattern, tau=tau)
                after = loaded.query(pattern, tau=tau)
                assert before == after  # positions AND probabilities bit-equal
        workloads.clear_caches()

    def test_listing_workload_round_trip(self, tmp_path):
        workloads.clear_caches()
        work = workloads.listing_workload(
            300, 0.3, tau_min=0.1, query_lengths=(3, 5), patterns_per_length=2
        )
        path = work.engine.save(tmp_path / "bench-listing")
        loaded = load_index(path)
        for pattern in work.patterns:
            for tau in (0.1, 0.3):
                assert work.engine.query(pattern, tau=tau) == loaded.query(
                    pattern, tau=tau
                )
        workloads.clear_caches()


def _random_input_for(kind: str, rng: random.Random):
    """A random input suitable for building an index of ``kind``."""
    if kind in ("special", "simple"):
        return make_random_special_string(rng.randint(10, 40), seed=rng.randint(0, 9999))
    if kind == "listing":
        return UncertainStringCollection(
            [
                make_random_uncertain_string(
                    rng.randint(5, 15), 0.3, seed=rng.randint(0, 9999)
                )
                for _ in range(rng.randint(2, 6))
            ]
        )
    return make_random_uncertain_string(
        rng.randint(10, 40), 0.3, seed=rng.randint(0, 9999)
    )


def _random_probe(engine, rng: random.Random):
    """Random (pattern, tau, k) probes answered by both engine copies."""
    if engine.is_listing:
        backbone = engine.index.collection[0].most_likely_string()
    elif hasattr(engine.index, "string"):
        string = engine.index.string
        backbone = (
            string.text if hasattr(string, "text") else string.most_likely_string()
        )
    else:
        backbone = "AB"
    length = rng.randint(1, min(4, len(backbone)))
    start = rng.randint(0, len(backbone) - length)
    pattern = backbone[start : start + length]
    tau = max(engine.tau_min, round(rng.uniform(0.1, 0.9), 3)) or 0.1
    return pattern, tau, rng.randint(1, 5)


class TestFuzzRoundTrip:
    """Randomized build → save → load_index → identical answers.

    Parameterized over all five index kinds *and* the sharded manifest:
    arrays round-trip bit-exactly, so a loaded engine's answers must equal
    the original's, match for match.
    """

    @pytest.mark.parametrize("kind", ["special", "simple", "general", "approximate", "listing"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_engine_fuzz_round_trip(self, tmp_path, kind, seed):
        rng = random.Random(seed * 1000 + hash(kind) % 1000)
        data = _random_input_for(kind, rng)
        kwargs = {"kind": kind}
        if kind in ("general", "approximate", "listing"):
            kwargs["tau_min"] = 0.1
        if kind == "approximate":
            kwargs["epsilon"] = 0.05
        engine = build_index(data, **kwargs)
        assert engine.kind == kind
        loaded = load_index(engine.save(tmp_path / f"fuzz-{kind}-{seed}"))
        assert loaded.kind == kind
        for _ in range(10):
            pattern, tau, k = _random_probe(engine, rng)
            assert engine.query(pattern, tau=tau) == loaded.query(pattern, tau=tau)
            assert engine.top_k(pattern, k, tau=tau) == loaded.top_k(
                pattern, k, tau=tau
            )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("shards", [2, 5])
    def test_sharded_string_fuzz_round_trip(self, tmp_path, seed, shards):
        rng = random.Random(seed)
        string = make_random_uncertain_string(rng.randint(25, 60), 0.3, seed=seed)
        engine = build_sharded_index(
            string, shards=shards, tau_min=0.1, max_pattern_len=5
        )
        path = engine.save(tmp_path / f"fuzz-sharded-{seed}-{shards}")
        assert is_sharded_archive(path)
        loaded = load_index(path)
        assert isinstance(loaded, ShardedEngine)
        assert loaded.spec == engine.spec
        assert loaded.kind == engine.kind
        backbone = string.most_likely_string()
        for _ in range(10):
            length = rng.randint(1, 5)
            start = rng.randint(0, len(backbone) - length)
            pattern = backbone[start : start + length]
            tau = round(rng.uniform(0.1, 0.9), 3)
            assert engine.query(pattern, tau=tau) == loaded.query(pattern, tau=tau)
            assert engine.top_k(pattern, 3, tau=tau) == loaded.top_k(
                pattern, 3, tau=tau
            )
        engine.close()
        loaded.close()

    @pytest.mark.parametrize("seed", [4, 5])
    def test_sharded_collection_fuzz_round_trip(self, tmp_path, seed):
        rng = random.Random(seed)
        collection = UncertainStringCollection(
            [
                make_random_uncertain_string(rng.randint(5, 12), 0.4, seed=seed + i)
                for i in range(rng.randint(4, 9))
            ]
        )
        engine = build_sharded_index(collection, shards=3, tau_min=0.05)
        loaded = load_index(engine.save(tmp_path / f"fuzz-sharded-coll-{seed}"))
        for pattern in ("A", "B", "AB", "CA"):
            for tau in (0.05, 0.2, 0.5):
                assert engine.query(pattern, tau=tau) == loaded.query(
                    pattern, tau=tau
                )
        engine.close()
        loaded.close()


class TestShardedArchiveResult:
    """load_sharded_payload returns a named result; tuple unpacking survives."""

    def test_named_fields_and_tuple_unpacking_agree(self, tmp_path):
        from repro.api import ShardedArchive, load_sharded_payload

        engine = build_sharded_index("BANANA" * 5, shards=2, max_pattern_len=4)
        path = engine.save(tmp_path / "named")
        engine.close()
        archive = load_sharded_payload(path)
        assert isinstance(archive, ShardedArchive)
        # The PR-4 4-tuple shape keeps unpacking, field for field.
        payloads, spec, plan, shard_paths = load_sharded_payload(path)
        assert len(archive.payloads) == len(payloads) == 2
        assert archive.spec == spec
        assert archive.plan.kind == plan.kind == "special"
        assert [p.name for p in archive.shard_paths] == [p.name for p in shard_paths]
        assert all(p.suffix == ".npz" for p in archive.shard_paths)


class TestShardedManifest:
    def test_manifest_contents(self, tmp_path):
        engine = build_sharded_index("BANANA" * 5, shards=2, max_pattern_len=4)
        path = engine.save(tmp_path / "sharded-manifest")
        manifest = read_sharded_manifest(path)
        assert manifest["format"] == "repro-sharded-index"
        assert manifest["version"] == 1
        assert manifest["kind"] == "special"
        assert manifest["spec"]["shard_count"] == 2
        assert manifest["spec"]["overlap"] == 3
        assert len(manifest["shards"]) == 2
        # Each shard archive is an ordinary, individually loadable archive.
        for name in manifest["shards"]:
            shard_engine = load_index(path / name)
            assert shard_engine.kind == "special"
        engine.close()

    def test_resave_with_fewer_shards_removes_stale_archives(self, tmp_path):
        target = tmp_path / "resave"
        wide = build_sharded_index("BANANA" * 6, shards=5, max_pattern_len=4)
        wide.save(target)
        wide.close()
        narrow = build_sharded_index("BANANA" * 6, shards=2, max_pattern_len=4)
        narrow.save(target)
        narrow.close()
        assert sorted(p.name for p in target.glob("shard-*.npz")) == [
            "shard-0000.npz",
            "shard-0001.npz",
        ]
        assert load_index(target).shard_count == 2

    def test_save_to_npz_path_rejected(self, tmp_path):
        engine = build_sharded_index("BANANA" * 5, shards=2, max_pattern_len=4)
        with pytest.raises(ValidationError):
            engine.save(tmp_path / "wrong.npz")
        engine.close()

    def test_not_a_sharded_archive(self, tmp_path):
        assert not is_sharded_archive(tmp_path / "missing")
        (tmp_path / "plain-dir").mkdir()
        assert not is_sharded_archive(tmp_path / "plain-dir")
        with pytest.raises(ValidationError):
            read_sharded_manifest(tmp_path / "plain-dir")

    def test_foreign_manifest_rejected(self, tmp_path):
        target = tmp_path / "foreign"
        target.mkdir()
        (target / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValidationError):
            read_sharded_manifest(target)

    def test_newer_sharded_version_rejected(self, tmp_path):
        engine = build_sharded_index("BANANA" * 5, shards=2, max_pattern_len=4)
        path = engine.save(tmp_path / "future-sharded")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] += 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValidationError):
            load_index(path)
        engine.close()

    def test_loaded_plan_mentions_directory(self, tmp_path):
        engine = build_sharded_index("BANANA" * 5, shards=2, max_pattern_len=4)
        loaded = load_index(engine.save(tmp_path / "sharded-plan"))
        assert "sharded-plan/" in loaded.plan.reason
        engine.close()
        loaded.close()


class TestManifest:
    def test_read_manifest_contents(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "manifest-check")
        manifest = read_manifest(path)
        assert manifest["format"] == FORMAT_NAME
        assert manifest["version"] == FORMAT_VERSION
        assert manifest["kind"] == "general"
        assert manifest["plan"]["tau_min"] == pytest.approx(0.1)

    def test_npz_suffix_appended(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "no-suffix")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_not_an_archive_raises(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ValidationError):
            read_manifest(path)

    def test_newer_version_raises(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "future")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"].tolist()).decode("utf-8"))
        manifest["version"] = FORMAT_VERSION + 1
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValidationError):
            load_index_payload(path)

    def test_unsupported_index_type_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            save_index_payload(object(), None, tmp_path / "nope")

    def test_raw_payload_round_trip_without_plan(self, tmp_path):
        from repro.core.special_index import SpecialUncertainStringIndex

        string = SpecialUncertainString([("a", 0.9), ("b", 0.8), ("a", 0.7)])
        index = SpecialUncertainStringIndex(string)
        path = save_index_payload(index, None, tmp_path / "raw")
        loaded, plan = load_index_payload(path)
        assert loaded.query("ab", 0.5) == index.query("ab", 0.5)
        assert plan.kind == "special"


class TestFormatVersions:
    """v1 (compressed, rebuild-on-load), v2 (full RMQ tables, mmap-able)
    and v3 (the payload schema, space-efficient RMQ payloads)."""

    @pytest.mark.parametrize("kind", ["special", "simple", "general", "approximate", "listing"])
    @pytest.mark.parametrize("version", [1, 2, 3])
    @pytest.mark.parametrize("seed", [11, 12])
    def test_all_versions_fuzz_round_trip(self, tmp_path, kind, version, seed):
        rng = random.Random(seed * 77 + version + hash(kind) % 1000)
        data = _random_input_for(kind, rng)
        kwargs = {"kind": kind}
        if kind in ("general", "approximate", "listing"):
            kwargs["tau_min"] = 0.1
        if kind == "approximate":
            kwargs["epsilon"] = 0.05
        engine = build_index(data, **kwargs)
        path = engine.save(tmp_path / f"v{version}-{kind}", version=version)
        assert read_manifest(path)["version"] == version
        for mmap in (False, True):
            loaded = load_index(path, mmap=mmap)
            assert loaded.kind == kind
            for _ in range(8):
                pattern, tau, k = _random_probe(engine, rng)
                assert engine.query(pattern, tau=tau) == loaded.query(pattern, tau=tau)
                assert engine.top_k(pattern, k, tau=tau) == loaded.top_k(
                    pattern, k, tau=tau
                )

    def test_v2_archives_carry_rmq_payloads(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        v2 = engine.save(tmp_path / "v2", version=2)
        v1 = engine.save(tmp_path / "v1", version=1)
        with np.load(v2, allow_pickle=False) as archive:
            v2_keys = set(archive.files)
        with np.load(v1, allow_pickle=False) as archive:
            v1_keys = set(archive.files)
        assert any(key.startswith("rmq_") for key in v2_keys)
        assert not any(key.startswith("rmq_") for key in v1_keys)
        # v2 is a strict superset: the value arrays are unchanged.
        assert v1_keys <= v2_keys
        manifest = read_manifest(v2)
        assert manifest["rmq_payload_version"] == 1

    def test_v3_archives_are_smaller_than_v2(self, tmp_path, general_string):
        # The headline of the format: v3 ships block positions instead of
        # full RMQ tables, so the archive shrinks (dramatically so for
        # sparse-table indexes; see the archive-size bench).
        engine = build_index(general_string, tau_min=0.1, rmq_implementation="sparse")
        v2 = engine.save(tmp_path / "v2", version=2)
        v3 = engine.save(tmp_path / "v3", version=3)
        assert v3.stat().st_size < v2.stat().st_size
        manifest = read_manifest(v3)
        assert manifest["version"] == 3
        assert manifest["payload"]["schema"] == "index/general"

    def test_mmap_load_returns_memory_mapped_arrays(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "mapped")
        loaded = load_index(path, mmap=True)
        assert isinstance(loaded.index._prefix, np.memmap)
        # SuffixArray casts through ascontiguousarray, which keeps the map
        # as a zero-copy base view.
        suffix_array = loaded.index._suffix_array.array
        assert isinstance(suffix_array, np.memmap) or isinstance(
            suffix_array.base, np.memmap
        )
        # The RMQ structures were restored from their space-efficient
        # payloads: the stored block positions stay memory-mapped (only
        # the small summary table is rebuilt on the heap).
        rmq = next(iter(loaded.index._short_rmq.values()))
        positions = rmq._block_positions
        assert isinstance(positions, np.memmap) or isinstance(
            positions.base, np.memmap
        )
        assert "mmap" in loaded.plan.reason

    def test_v2_mmap_load_maps_rmq_tables(self, tmp_path, general_string):
        # Legacy v2 archives keep their zero-copy table restore.
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "mapped-v2", version=2)
        loaded = load_index(path, mmap=True)
        rmq = next(iter(loaded.index._short_rmq.values()))
        table = rmq._table if hasattr(rmq, "_table") else rmq._summary._table
        assert isinstance(table, np.memmap) or isinstance(table.base, np.memmap)

    def test_mmap_on_compressed_archive_degrades_gracefully(
        self, tmp_path, general_string
    ):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "compressed", version=1)
        loaded = load_index(path, mmap=True)
        for tau in (0.1, 0.3):
            assert loaded.query("QP", tau=tau) == engine.query("QP", tau=tau)

    def test_sharded_version_forwarding(self, tmp_path):
        engine = build_sharded_index(
            "banana" * 10, shards=2, max_pattern_len=6
        )
        path = engine.save(tmp_path / "sharded-v1", version=1)
        manifest = read_sharded_manifest(path)
        assert manifest["archive_version"] == 1
        for name in manifest["shards"]:
            assert read_manifest(path / name)["version"] == 1
        loaded = load_index(path, mmap=True)
        assert loaded.query("anan", tau=0.5) == engine.query("anan", tau=0.5)
        loaded.close()
        engine.close()

    def test_unknown_write_version_rejected(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        with pytest.raises(ValidationError):
            engine.save(tmp_path / "nope", version=4)

    def test_cross_version_resave_matrix(self, tmp_path, general_string):
        """Load any version, re-save as any version: answers never change.

        Notably v3 → v2: the restored CompactRMQ structures have no full
        sparse tables, so the v2 writer rebuilds them — and the rebuilt
        archive must still answer byte-identically.
        """
        engine = build_index(general_string, tau_min=0.1, rmq_implementation="sparse")
        probes = [("QP", 0.1), ("P", 0.25), ("QPP", 0.4)]
        expected = {probe: engine.query(probe[0], tau=probe[1]) for probe in probes}
        for source_version in (1, 2, 3):
            source = engine.save(
                tmp_path / f"src-v{source_version}", version=source_version
            )
            for mmap in (False, True):
                loaded = load_index(source, mmap=mmap)
                for target_version in (1, 2, 3):
                    target = loaded.save(
                        tmp_path / f"re-v{source_version}-{target_version}-{mmap}",
                        version=target_version,
                    )
                    assert read_manifest(target)["version"] == target_version
                    reloaded = load_index(target)
                    for (pattern, tau), answer in expected.items():
                        assert reloaded.query(pattern, tau=tau) == answer
                        assert reloaded.top_k(pattern, 3) == loaded.top_k(pattern, 3)

    def test_newer_rmq_payload_version_rejected(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "future-rmq")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"].tolist()).decode("utf-8"))
        manifest["rmq_payload_version"] = 99
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValidationError):
            load_index_payload(path)

    def test_compress_override(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        stored = engine.save(tmp_path / "stored")
        compressed = engine.save(tmp_path / "small", compress=True)
        assert compressed.stat().st_size < stored.stat().st_size
        a = load_index(stored)
        b = load_index(compressed, mmap=True)  # degrades to eager, same answers
        assert a.query("QP", tau=0.2) == b.query("QP", tau=0.2)

    def test_mmap_on_garbage_raises_validation_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValidationError):
            load_index_payload(path, mmap=True)


class TestChecksumVerification:
    """Per-array crc32 records: corrupt archive members fail loudly.

    The corruption helper rewrites the zip with one data byte flipped in
    the largest payload member — ``writestr`` recomputes the zip-level
    CRC, so the archive stays structurally valid and only the manifest
    checksums can catch the damage (exactly the bit-rot scenario).
    """

    def _corrupt_largest_member(self, path):
        import zipfile

        with zipfile.ZipFile(path) as archive:
            names = archive.namelist()
            data = {name: archive.read(name) for name in names}
        victim = max(
            (name for name in names if name.endswith(".npy") and "__" not in name),
            key=lambda name: len(data[name]),
        )
        raw = bytearray(data[victim])
        raw[-1] ^= 0xFF  # flip a trailing data byte; npy headers sit up front
        data[victim] = bytes(raw)
        with zipfile.ZipFile(path, "w") as archive:
            for name in names:
                archive.writestr(name, data[name])
        return victim[: -len(".npy")]

    def test_eager_load_detects_corruption(self, tmp_path):
        import re

        engine = build_index(make_random_special_string(50, seed=3))
        path = engine.save(tmp_path / "damaged")
        load_index(path)  # pristine archive loads fine
        victim = self._corrupt_largest_member(path)
        with pytest.raises(ValidationError, match="checksum"):
            load_index(path)
        # The error names the corrupt member.
        with pytest.raises(ValidationError, match=re.escape(victim)):
            load_index_payload(path)
        # verify=False is the escape hatch: the damaged bytes load as-is.
        load_index_payload(path, verify=False)

    def test_mmap_skips_verification_unless_forced(self, tmp_path):
        engine = build_index(make_random_special_string(50, seed=4))
        path = engine.save(tmp_path / "damaged-mmap")
        self._corrupt_largest_member(path)
        # Default mmap load stays zero-copy: checksumming would fault in
        # every page, so corruption goes undetected here by design.
        load_index_payload(path, mmap=True)
        with pytest.raises(ValidationError, match="checksum"):
            load_index_payload(path, mmap=True, verify=True)
