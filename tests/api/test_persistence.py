"""Save/load round-trips: loaded indexes answer byte-identically."""

import json

import numpy as np
import pytest

from repro.api import (
    FORMAT_NAME,
    FORMAT_VERSION,
    build_index,
    load_index,
    load_index_payload,
    read_manifest,
    save_index_payload,
)
from repro.bench import workloads
from repro.exceptions import ValidationError
from repro.strings import (
    CorrelationModel,
    CorrelationRule,
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)


@pytest.fixture
def general_string():
    return UncertainString(
        [
            {"Q": 0.7, "S": 0.3},
            {"Q": 0.3, "P": 0.7},
            {"P": 1.0},
            {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
        ],
        name="figure10",
    )


def _assert_same_answers(engine, loaded, patterns, taus):
    for pattern in patterns:
        for tau in taus:
            assert engine.query(pattern, tau=tau) == loaded.query(pattern, tau=tau)
        assert engine.top_k(pattern, 3) == loaded.top_k(pattern, 3)


class TestRoundTrips:
    def test_special_round_trip(self, tmp_path):
        string = SpecialUncertainString(
            [("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6)],
            name="banana",
        )
        engine = build_index(string)
        loaded = load_index(engine.save(tmp_path / "special"))
        _assert_same_answers(engine, loaded, ["a", "ana", "ban", "zzz"], [0.1, 0.3, 0.7])
        assert loaded.kind == "special"
        assert loaded.index.string.name == "banana"

    def test_simple_round_trip(self, tmp_path):
        engine = build_index("banana" * 4, space_budget_bytes=10)
        assert engine.kind == "simple"
        loaded = load_index(engine.save(tmp_path / "simple"))
        _assert_same_answers(engine, loaded, ["ana", "nab", "q"], [0.2, 0.8])

    def test_general_round_trip(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        loaded = load_index(engine.save(tmp_path / "general"))
        _assert_same_answers(
            engine, loaded, ["QP", "PP", "P", "QPP", "ZZ"], [0.1, 0.25, 0.4]
        )
        assert loaded.index.transformed.text == engine.index.transformed.text
        assert loaded.index.tau_min == engine.index.tau_min

    def test_approximate_round_trip(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1, epsilon=0.05)
        loaded = load_index(engine.save(tmp_path / "approx"))
        _assert_same_answers(engine, loaded, ["QP", "PP", "P"], [0.1, 0.3])
        assert loaded.index.link_count == engine.index.link_count
        assert loaded.index.epsilon == engine.index.epsilon
        # Verified (exact) answers survive too.
        assert loaded.index.query("QP", 0.4, verify=True) == engine.index.query(
            "QP", 0.4, verify=True
        )

    def test_listing_round_trip(self, tmp_path):
        collection = UncertainStringCollection(
            [
                UncertainString(
                    [
                        {"A": 0.4, "B": 0.3, "F": 0.3},
                        {"B": 0.3, "L": 0.3, "F": 0.3, "J": 0.1},
                        {"F": 0.5, "J": 0.5},
                    ],
                    name="d1",
                ),
                UncertainString(
                    [
                        {"A": 0.6, "C": 0.4},
                        {"B": 0.5, "F": 0.3, "J": 0.2},
                        {"B": 0.4, "C": 0.3, "E": 0.2, "F": 0.1},
                    ],
                    name="d2",
                ),
            ]
        )
        engine = build_index(collection, tau_min=0.05, metric="or")
        loaded = load_index(engine.save(tmp_path / "listing"))
        _assert_same_answers(engine, loaded, ["BF", "A", "F"], [0.05, 0.1, 0.5])
        assert loaded.index.metric == "or"
        assert loaded.index.collection.name_of(1) == "d2"

    def test_correlated_general_round_trip(self, tmp_path):
        string = UncertainString(
            [{"e": 0.6, "f": 0.4}, {"a": 1.0}, {"z": 0.5, "x": 0.5}],
            correlations=CorrelationModel(
                [CorrelationRule(2, "z", 0, "e", 0.3, 0.7)]
            ),
        )
        engine = build_index(string, tau_min=0.1)
        loaded = load_index(engine.save(tmp_path / "correlated"))
        assert bool(loaded.index.string.correlations)
        _assert_same_answers(engine, loaded, ["az", "eaz", "faz"], [0.1, 0.2])

    def test_loaded_plan_mentions_archive(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        loaded = load_index(engine.save(tmp_path / "plan-check"))
        assert "plan-check.npz" in loaded.plan.reason
        assert loaded.plan.kind == "general"


class TestBenchmarkWorkloadRoundTrip:
    """Acceptance: saved-then-loaded index is byte-identical on the synthetic
    benchmark workload."""

    def test_substring_workload_round_trip(self, tmp_path):
        workloads.clear_caches()
        work = workloads.substring_workload(
            300, 0.3, tau_min=0.1, query_lengths=(4, 8), patterns_per_length=3
        )
        path = work.engine.save(tmp_path / "bench-substring")
        loaded = load_index(path)
        for pattern in work.patterns:
            for tau in (0.1, 0.2, 0.5):
                before = work.engine.query(pattern, tau=tau)
                after = loaded.query(pattern, tau=tau)
                assert before == after  # positions AND probabilities bit-equal
        workloads.clear_caches()

    def test_listing_workload_round_trip(self, tmp_path):
        workloads.clear_caches()
        work = workloads.listing_workload(
            300, 0.3, tau_min=0.1, query_lengths=(3, 5), patterns_per_length=2
        )
        path = work.engine.save(tmp_path / "bench-listing")
        loaded = load_index(path)
        for pattern in work.patterns:
            for tau in (0.1, 0.3):
                assert work.engine.query(pattern, tau=tau) == loaded.query(
                    pattern, tau=tau
                )
        workloads.clear_caches()


class TestManifest:
    def test_read_manifest_contents(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "manifest-check")
        manifest = read_manifest(path)
        assert manifest["format"] == FORMAT_NAME
        assert manifest["version"] == FORMAT_VERSION
        assert manifest["kind"] == "general"
        assert manifest["plan"]["tau_min"] == pytest.approx(0.1)

    def test_npz_suffix_appended(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "no-suffix")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_not_an_archive_raises(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ValidationError):
            read_manifest(path)

    def test_newer_version_raises(self, tmp_path, general_string):
        engine = build_index(general_string, tau_min=0.1)
        path = engine.save(tmp_path / "future")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        manifest = json.loads(bytes(arrays["__manifest__"].tolist()).decode("utf-8"))
        manifest["version"] = FORMAT_VERSION + 1
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValidationError):
            load_index_payload(path)

    def test_unsupported_index_type_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            save_index_payload(object(), None, tmp_path / "nope")

    def test_raw_payload_round_trip_without_plan(self, tmp_path):
        from repro.core.special_index import SpecialUncertainStringIndex

        string = SpecialUncertainString([("a", 0.9), ("b", 0.8), ("a", 0.7)])
        index = SpecialUncertainStringIndex(string)
        path = save_index_payload(index, None, tmp_path / "raw")
        loaded, plan = load_index_payload(path)
        assert loaded.query("ab", 0.5) == index.query("ab", 0.5)
        assert plan.kind == "special"
