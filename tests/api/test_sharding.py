"""Sharded-vs-unsharded equivalence, pinned against the brute-force oracle.

The chunk-with-overlap design is easy to get subtly wrong (an occurrence
straddling a boundary missed, or reported twice from the overlap), so the
core of this module is an equivalence oracle: for shard counts {1, 2, 5}
the :class:`ShardedEngine` must answer exactly like the unsharded
:class:`Engine` on the same data — and both must agree with the exhaustive
possible-worlds computation (:class:`repro.core.baseline.BruteForceOracle` /
``matching_positions``) the property suite uses.

Probabilities and relevances are compared with
``math.isclose(rel_tol=1e-9)`` rather than bit equality: the indexes
derive values from log-prefix sums whose accumulation origin shifts with
the shard boundary (chunk start, or the document's offset in the
concatenated transformed text), so the last few ulps can differ — the same
reason the index-vs-oracle tests carve out thresholds within a ulp of a
match.  Match *sets* (positions / documents) must agree exactly away from
those threshold boundaries.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import SearchRequest, build_index, build_sharded_index, shard_input
from repro.api.planner import ShardSpec
from repro.core.base import Occurrence, translate_match
from repro.core.baseline import BruteForceOracle
from repro.exceptions import PatternTooLongError, ThresholdError, ValidationError
from repro.strings import (
    CorrelationModel,
    CorrelationRule,
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)
from tests.conftest import make_random_special_string, make_random_uncertain_string

SHARD_COUNTS = (1, 2, 5)


def assert_occurrences_equivalent(flat, sharded, *, tau=None):
    """Same positions; probabilities equal to within floating-point noise.

    When ``tau`` is given, a position present on one side only is tolerated
    if its probability sits within a ulp of the threshold (the strict
    ``> tau`` comparison may legitimately flip — same carve-out as the
    index-vs-oracle property tests).
    """
    flat_by_position = {occ.position: occ.probability for occ in flat}
    sharded_by_position = {occ.position: occ.probability for occ in sharded}
    for position in set(flat_by_position) ^ set(sharded_by_position):
        probability = flat_by_position.get(
            position, sharded_by_position.get(position)
        )
        assert tau is not None and abs(probability - tau) <= 1e-9 * max(
            1.0, tau
        ), (position, probability, tau)
    for position in set(flat_by_position) & set(sharded_by_position):
        assert math.isclose(
            flat_by_position[position],
            sharded_by_position[position],
            rel_tol=1e-9,
        ), position


class TestShardInput:
    def test_chunks_cover_with_overlap(self):
        string = SpecialUncertainString.from_deterministic("ABCDEFGHIJ")
        spec, parts = shard_input(string, 3, max_pattern_len=3)
        assert spec.mode == "chunks"
        assert spec.shard_count == 3
        assert spec.overlap == 2
        assert spec.offsets == (0, 4, 8)
        assert spec.owned_ends == (4, 8, 10)
        # Each chunk extends `overlap` past its owned range (capped at n).
        assert [part.text for part in parts] == ["ABCDEF", "EFGHIJ", "IJ"]

    def test_documents_partition_is_contiguous_and_near_equal(self):
        collection = UncertainStringCollection(
            [UncertainString.from_deterministic(f"DOC{i}") for i in range(7)]
        )
        spec, parts = shard_input(collection, 3)
        assert spec.mode == "documents"
        assert spec.offsets == (0, 3, 5)
        assert spec.owned_ends == (3, 5, 7)
        assert [len(part) for part in parts] == [3, 2, 2]
        assert parts[1].name_of(0) == collection.name_of(3)

    def test_shard_count_clamped(self):
        spec, parts = shard_input("ABC", 10, max_pattern_len=2)
        assert spec.shard_count == len(parts) == 3
        collection = UncertainStringCollection(
            [UncertainString.from_deterministic("A")]
        )
        spec, _ = shard_input(collection, 10)
        assert spec.shard_count == 1

    def test_owner_of(self):
        spec, _ = shard_input("ABCDEFGHIJ", 3, max_pattern_len=3)
        assert [spec.owner_of(p) for p in (0, 3, 4, 7, 8, 9)] == [0, 0, 1, 1, 2, 2]
        with pytest.raises(ValidationError):
            spec.owner_of(10)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            shard_input("ABC", 0)
        with pytest.raises(ValidationError):
            shard_input("ABC", 2, max_pattern_len=0)

    def test_correlated_string_rejected_in_chunk_mode(self):
        string = UncertainString(
            [{"a": 0.5, "b": 0.5}, {"a": 1.0}, {"c": 0.5, "d": 0.5}],
            correlations=CorrelationModel([CorrelationRule(2, "c", 0, "a", 0.9, 0.1)]),
        )
        with pytest.raises(ValidationError):
            shard_input(string, 2, max_pattern_len=2)

    def test_correlated_collection_allowed(self):
        correlated = UncertainString(
            [{"A": 0.6, "B": 0.4}, {"A": 0.5, "B": 0.5}],
            correlations=CorrelationModel([CorrelationRule(1, "A", 0, "A", 0.9, 0.2)]),
        )
        collection = UncertainStringCollection(
            [correlated, UncertainString.from_deterministic("AB")]
        )
        spec, parts = shard_input(collection, 2)
        assert spec.shard_count == 2


class TestChunkEquivalenceGeneral:
    """Chunk-sharded general engine vs unsharded engine vs oracle."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_random_strings_tau_sweep(self, shards):
        string = make_random_uncertain_string(60, 0.35, seed=11 + shards)
        flat = build_index(string, tau_min=0.1)
        sharded = build_sharded_index(
            string, shards=shards, tau_min=0.1, max_pattern_len=6
        )
        assert sharded.kind == flat.kind == "general"
        backbone = string.most_likely_string()
        oracle = BruteForceOracle(string=string)
        for start in range(0, len(backbone) - 4, 5):
            pattern = backbone[start : start + 4]
            for tau in (0.1, 0.2, 0.35, 0.6, 0.9):
                flat_matches = flat.query(pattern, tau=tau)
                sharded_matches = sharded.query(pattern, tau=tau)
                assert_occurrences_equivalent(
                    flat_matches, sharded_matches, tau=tau
                )
                # ...and both agree with the possible-worlds oracle.
                assert_occurrences_equivalent(
                    oracle.substring_occurrences(pattern, tau),
                    sharded_matches,
                    tau=tau,
                )
        sharded.close()

    @pytest.mark.parametrize("shards", (2, 5))
    def test_patterns_straddling_every_chunk_edge(self, shards):
        string = make_random_uncertain_string(50, 0.3, seed=99)
        flat = build_index(string, tau_min=0.1)
        sharded = build_sharded_index(
            string, shards=shards, tau_min=0.1, max_pattern_len=5
        )
        backbone = string.most_likely_string()
        for boundary in sharded.spec.owned_ends[:-1]:
            # Windows overlapping the boundary from every offset.
            for length in (2, 3, 5):
                for start in range(
                    max(0, boundary - length), min(boundary + 1, len(backbone) - length + 1)
                ):
                    pattern = backbone[start : start + length]
                    for tau in (0.1, 0.3, 0.5):
                        assert_occurrences_equivalent(
                            flat.query(pattern, tau=tau),
                            sharded.query(pattern, tau=tau),
                            tau=tau,
                        )
        sharded.close()

    def test_search_many_matches_flat_batch(self):
        string = make_random_uncertain_string(40, 0.3, seed=5)
        flat = build_index(string, tau_min=0.1)
        sharded = build_sharded_index(string, shards=3, tau_min=0.1, max_pattern_len=4)
        backbone = string.most_likely_string()
        requests = [
            SearchRequest(backbone[i : i + 3], tau=tau)
            for i in (0, 7, 19, 30)
            for tau in (0.1, 0.4)
        ]
        for flat_result, sharded_result in zip(
            flat.search_many(requests), sharded.search_many(requests)
        ):
            assert_occurrences_equivalent(
                flat_result.matches,
                sharded_result.matches,
                tau=flat_result.request.resolve_tau(flat.tau_min),
            )
        sharded.close()


class TestChunkEquivalenceSpecial:
    """Chunk-sharded special / simple engines vs the unsharded answers."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("kind", ["special", "simple"])
    def test_random_special_strings(self, shards, kind):
        string = make_random_special_string(48, seed=3 * shards + 1)
        flat = build_index(string, kind=kind)
        sharded = build_sharded_index(
            string, shards=shards, kind=kind, max_pattern_len=4
        )
        assert sharded.kind == kind
        for start in range(0, len(string.text) - 3, 3):
            pattern = string.text[start : start + 3]
            for tau in (0.05, 0.2, 0.5, 0.8):
                assert_occurrences_equivalent(
                    flat.query(pattern, tau=tau),
                    sharded.query(pattern, tau=tau),
                    tau=tau,
                )
        sharded.close()

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.05, max_value=0.9),
        st.data(),
    )
    def test_property_style_equivalence(self, length, shards, tau, data):
        string = make_random_special_string(
            length, seed=data.draw(st.integers(min_value=0, max_value=10_000))
        )
        pattern_length = data.draw(
            st.integers(min_value=1, max_value=min(4, length))
        )
        start = data.draw(st.integers(min_value=0, max_value=length - pattern_length))
        pattern = string.text[start : start + pattern_length]
        expected = string.matching_positions(pattern, tau)

        sharded = build_sharded_index(
            string, shards=shards, max_pattern_len=4
        )
        got = sharded.query(pattern, tau=tau)
        got_positions = {occ.position for occ in got}
        for position in got_positions ^ set(expected):
            probability = string.occurrence_probability(pattern, position)
            assert abs(probability - tau) <= 1e-9, (position, probability, tau)
        sharded.close()


def assert_listing_equivalent(flat, sharded, *, tau=None):
    """Same documents (threshold-boundary carve-out); relevances to 1e-9."""
    flat_by_document = {match.document: match.relevance for match in flat}
    sharded_by_document = {match.document: match.relevance for match in sharded}
    for document in set(flat_by_document) ^ set(sharded_by_document):
        relevance = flat_by_document.get(
            document, sharded_by_document.get(document)
        )
        assert tau is not None and abs(relevance - tau) <= 1e-9 * max(
            1.0, tau
        ), (document, relevance, tau)
    for document in set(flat_by_document) & set(sharded_by_document):
        assert math.isclose(
            flat_by_document[document],
            sharded_by_document[document],
            rel_tol=1e-9,
        ), document


class TestDocumentEquivalenceListing:
    """Document-sharded listing engine vs unsharded vs the oracle."""

    @pytest.fixture
    def collection(self):
        documents = []
        for i in range(11):
            documents.append(
                make_random_uncertain_string(8 + (i % 5), 0.4, seed=100 + i)
            )
        return UncertainStringCollection(documents)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("metric", ["max", "or"])
    def test_listing_queries_equivalent(self, collection, shards, metric):
        flat = build_index(collection, tau_min=0.05, metric=metric)
        sharded = build_sharded_index(
            collection, shards=shards, tau_min=0.05, metric=metric
        )
        assert sharded.is_listing
        patterns = {
            document.most_likely_string()[:2] for document in collection
        } | {"A", "B"}
        for pattern in sorted(patterns):
            for tau in (0.05, 0.1, 0.3, 0.7):
                assert_listing_equivalent(
                    flat.query(pattern, tau=tau),
                    sharded.query(pattern, tau=tau),
                    tau=tau,
                )
                flat_top = flat.top_k(pattern, 3, tau=tau)
                sharded_top = sharded.top_k(pattern, 3, tau=tau)
                assert [m.document for m in flat_top] == [
                    m.document for m in sharded_top
                ]
        sharded.close()

    @pytest.mark.parametrize("shards", (2, 5))
    def test_listing_matches_possible_worlds_oracle(self, collection, shards):
        sharded = build_sharded_index(collection, shards=shards, tau_min=0.05)
        for pattern in ("A", "BA", "CD"):
            for tau in (0.05, 0.2, 0.6):
                expected = collection.matching_documents(pattern, tau)
                got = [m.document for m in sharded.query(pattern, tau=tau)]
                boundary = {
                    document
                    for document in set(expected) ^ set(got)
                    if abs(
                        collection.document_relevance(pattern, document) - tau
                    )
                    <= 1e-9
                }
                assert set(expected) ^ set(got) <= boundary
        sharded.close()

    def test_document_identifiers_are_global(self, collection):
        sharded = build_sharded_index(collection, shards=5, tau_min=0.05)
        flat = build_index(collection, tau_min=0.05)
        matches = sharded.query("A", tau=0.05)
        assert_listing_equivalent(flat.query("A", tau=0.05), matches, tau=0.05)
        assert [m.document for m in matches] == sorted(m.document for m in matches)
        sharded.close()


class TestTopKEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_top_k_with_exact_ties(self, shards):
        # A periodic deterministic string: every "AB" occurrence ties at
        # probability 1.0, so top_k is decided purely by the position
        # tie-break — which must survive the shard merge.
        string = "AB" * 15
        flat = build_index(string)
        sharded = build_sharded_index(string, shards=shards, max_pattern_len=4)
        for k in (1, 3, 7, 30):
            assert flat.top_k("AB", k) == sharded.top_k("AB", k)
        sharded.close()

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_top_k_random_general(self, shards):
        string = make_random_uncertain_string(50, 0.3, seed=42)
        flat = build_index(string, tau_min=0.1)
        sharded = build_sharded_index(
            string, shards=shards, tau_min=0.1, max_pattern_len=4
        )
        backbone = string.most_likely_string()
        for start in (0, 11, 23, 37):
            pattern = backbone[start : start + 3]
            for k in (1, 2, 5, 100):
                flat_top = flat.top_k(pattern, k)
                sharded_top = sharded.top_k(pattern, k)
                assert [o.position for o in flat_top] == [
                    o.position for o in sharded_top
                ]
                for a, b in zip(flat_top, sharded_top):
                    assert math.isclose(a.probability, b.probability, rel_tol=1e-9)
        sharded.close()


class TestShardedEngineSurface:
    def test_pattern_longer_than_limit_rejected(self):
        sharded = build_sharded_index("ABCDEFGH" * 4, shards=2, max_pattern_len=3)
        with pytest.raises(PatternTooLongError):
            sharded.query("ABCD", tau=0.5)
        sharded.close()

    def test_document_mode_has_no_pattern_limit(self):
        collection = UncertainStringCollection(
            [UncertainString.from_deterministic("ABCDEFGH")]
        )
        sharded = build_sharded_index(collection, shards=1, tau_min=0.1)
        assert sharded.max_pattern_len is None
        assert sharded.query("ABCDEFGH", tau=0.5)
        sharded.close()

    def test_threshold_errors_propagate_from_shards(self):
        string = make_random_uncertain_string(30, 0.3, seed=1)
        sharded = build_sharded_index(string, shards=3, tau_min=0.2, max_pattern_len=4)
        with pytest.raises(ThresholdError):
            sharded.query("A", tau=0.05)
        sharded.close()

    def test_describe_and_space(self):
        string = make_random_uncertain_string(40, 0.3, seed=2)
        sharded = build_sharded_index(string, shards=2, tau_min=0.1, max_pattern_len=4)
        description = sharded.describe()
        assert description["kind"] == "general"
        assert description["sharding"]["shard_count"] == 2
        assert description["sharding"]["mode"] == "chunks"
        assert description["sharding"]["overlap"] == 3
        assert description["cache"]["enabled"]
        assert description["space_report"]["total"] == sharded.nbytes()
        assert len(description["shards"]) == 2
        assert sharded.nbytes() == sum(e.nbytes() for e in sharded.shards)
        sharded.close()

    def test_sharded_cache_serves_repeats(self):
        string = make_random_uncertain_string(40, 0.3, seed=3)
        sharded = build_sharded_index(string, shards=2, tau_min=0.1, max_pattern_len=4)
        pattern = string.most_likely_string()[:3]
        first = sharded.query(pattern, tau=0.2)
        second = sharded.query(pattern, tau=0.2)
        assert first == second
        stats = sharded.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # Shard-level caches are disabled: no double counting.
        assert all(not e.cache.enabled for e in sharded.shards)
        sharded.close()

    def test_spec_engine_count_mismatch_rejected(self):
        string = make_random_uncertain_string(20, 0.3, seed=4)
        sharded = build_sharded_index(string, shards=2, tau_min=0.1, max_pattern_len=4)
        from repro.api.sharding import ShardedEngine

        with pytest.raises(ValidationError):
            ShardedEngine(sharded.shards[:1], sharded.spec, sharded.plan)
        sharded.close()

    def test_context_manager_closes_pool(self):
        with build_sharded_index(
            "ABAB" * 8, shards=2, max_pattern_len=3
        ) as sharded:
            assert sharded.count("AB", tau=0.5) == 16
        assert sharded._executor is None


class TestTranslateMatch:
    def test_occurrence_translation(self):
        occurrence = Occurrence(3, 0.5)
        moved = translate_match(occurrence, position_offset=10)
        assert moved == Occurrence(13, 0.5)
        assert translate_match(occurrence) is occurrence

    def test_listing_translation(self):
        from repro.core.base import ListingMatch

        match = ListingMatch(1, 0.25)
        assert translate_match(match, document_offset=4) == ListingMatch(5, 0.25)
        assert translate_match(match) is match

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            translate_match("not-a-match")


class TestParallelConstruction:
    """build_sharded_index(workers=N) answers identically to a serial build.

    The process-pool path must not change anything observable: same
    partition, same per-shard plans, byte-identical answers (both paths run
    the exact same per-shard construction, only in different processes).
    """

    def test_workers_must_be_positive(self):
        with pytest.raises(ValidationError):
            build_sharded_index("ABAB" * 8, shards=2, max_pattern_len=3, workers=0)

    def test_chunk_mode_identical_to_serial(self):
        string = make_random_uncertain_string(120, 0.3, seed=42)
        serial = build_sharded_index(
            string, shards=3, tau_min=0.1, kind="general", max_pattern_len=6
        )
        parallel = build_sharded_index(
            string,
            shards=3,
            tau_min=0.1,
            kind="general",
            max_pattern_len=6,
            workers=3,
        )
        assert parallel.shard_count == serial.shard_count
        assert parallel.spec == serial.spec
        assert [engine.kind for engine in parallel.shards] == [
            engine.kind for engine in serial.shards
        ]
        backbone = string.most_likely_string()
        for pattern in (backbone[:2], backbone[10:14], backbone[50:53]):
            for tau in (0.1, 0.3):
                assert parallel.query(pattern, tau=tau) == serial.query(
                    pattern, tau=tau
                )
            assert parallel.top_k(pattern, 5) == serial.top_k(pattern, 5)
        serial.close()
        parallel.close()

    def test_document_mode_identical_to_serial(self):
        documents = [
            make_random_uncertain_string(24, 0.4, seed=100 + index)
            for index in range(6)
        ]
        collection = UncertainStringCollection(documents)
        serial = build_sharded_index(collection, shards=3, tau_min=0.1)
        parallel = build_sharded_index(collection, shards=3, tau_min=0.1, workers=2)
        backbone = documents[0].most_likely_string()
        for pattern in (backbone[:2], backbone[3:6]):
            for tau in (0.1, 0.25):
                assert parallel.query(pattern, tau=tau) == serial.query(
                    pattern, tau=tau
                )
            assert parallel.top_k(pattern, 3) == serial.top_k(pattern, 3)
        serial.close()
        parallel.close()

    def test_special_chunk_mode_identical_to_serial(self):
        string = make_random_special_string(100, seed=7)
        serial = build_sharded_index(string, shards=4, max_pattern_len=5)
        parallel = build_sharded_index(
            string, shards=4, max_pattern_len=5, workers=4
        )
        pattern = string.text[10:13]
        assert parallel.query(pattern, tau=0.1) == serial.query(pattern, tau=0.1)
        assert parallel.top_k(pattern, 4) == serial.top_k(pattern, 4)
        serial.close()
        parallel.close()

    def test_parallel_build_round_trips_through_save(self, tmp_path):
        from repro.api import load_index

        string = make_random_special_string(60, seed=11)
        parallel = build_sharded_index(
            string, shards=2, max_pattern_len=4, workers=2
        )
        path = parallel.save(tmp_path / "ensemble")
        restored = load_index(path)
        pattern = string.text[5:8]
        assert restored.query(pattern, tau=0.2) == parallel.query(pattern, tau=0.2)
        parallel.close()
        restored.close()


class TestResilienceConfig:
    """Recovery / degradation knobs: validation, surfacing, persistence."""

    def test_invalid_recovery_config_rejected(self):
        string = SpecialUncertainString.from_deterministic("ABCABCAB")
        with pytest.raises(ValidationError):
            build_sharded_index(string, shards=2, max_pattern_len=4, worker_retries=-1)
        with pytest.raises(ValidationError):
            build_sharded_index(
                string, shards=2, max_pattern_len=4, worker_retry_backoff_s=-0.5
            )

    def test_resilience_stats_surface_in_describe(self):
        string = SpecialUncertainString.from_deterministic("ABCABCAB")
        engine = build_sharded_index(
            string, shards=2, max_pattern_len=4, partial=True, worker_retries=3
        )
        try:
            assert engine.partial is True
            assert engine.worker_retries == 3
            assert engine.describe()["resilience"] == {
                "partial": True,
                "worker_retries": 3,
                "worker_retry_backoff_s": 0.05,
                "pool_recoveries": 0,
                "partial_answers": 0,
            }
        finally:
            engine.close()

    def test_defaults_are_strict_and_single_retry(self):
        string = SpecialUncertainString.from_deterministic("ABCABCAB")
        engine = build_sharded_index(string, shards=2, max_pattern_len=4)
        try:
            stats = engine.resilience_stats()
            assert stats["partial"] is False
            assert stats["worker_retries"] == 1
        finally:
            engine.close()

    def test_timeout_ms_preserved_through_top_k_shard_requests(self):
        # The widened per-shard top-k fetch must keep carrying the
        # caller's budget (a fresh SearchRequest is built per shard).
        string = SpecialUncertainString.from_deterministic("ABCABCABCABC")
        engine = build_sharded_index(string, shards=2, max_pattern_len=4)
        try:
            request = SearchRequest("ABC", tau=0.2, top_k=2, timeout_ms=30_000.0)
            bounded = engine.search(request)
            unbounded = engine.search(SearchRequest("ABC", tau=0.2, top_k=2))
            assert bounded.matches == unbounded.matches
            assert bounded.partial is False
            assert bounded.failed_shards == ()
        finally:
            engine.close()
