"""Shared-memory worker boundary: export/attach round trip and lifecycle.

The process-mode sharded engine ships each shard's arrays into one
``multiprocessing.shared_memory`` block and hands workers a ``("shm",
name, manifest_span, layout)`` spec — O(array count) pickled bytes, never
the arrays.  These tests pin the contract from both sides:

* **round trip** — attaching by spec reconstructs the payload zero-copy,
  bit for bit, as read-only views;
* **lifecycle** — blocks are refcounted, unlinked when the last owner
  releases, reused across pool rebuilds (crash recovery must not
  re-export), and shared across replicas of the same in-RAM build;
* **equivalence** — the {compact, wide} × {thread, process} matrix
  answers byte-identically to a serial wide engine on fuzzed probes.
"""

import contextlib
import gc
import os

import numpy as np
import pytest

from repro.api import build_index, build_sharded_index, index_to_payload
from repro.api.persistence import index_from_payload
from repro.api.shm import attach_payload, export_for_index
from repro.exceptions import ValidationError
from repro.serving.replicas import ReplicaSet
from repro.strings import SpecialUncertainString


def _special_string(n=240, seed=11):
    """A deterministic ACGT special string plus its certain text."""
    rng = np.random.default_rng(seed)
    text = "".join(rng.choice(list("ACGT"), size=n))
    probabilities = rng.uniform(0.3, 1.0, size=n).round(6)
    return text, SpecialUncertainString(list(zip(text, probabilities)))


def _probes(text, rng, count=15, max_length=7):
    for _ in range(count):
        length = int(rng.integers(1, max_length + 1))
        start = int(rng.integers(0, len(text) - length + 1))
        tau = float(rng.uniform(0.05, 0.9))
        yield text[start : start + length], tau


class TestSharedPayloadExport:
    def test_spec_attach_round_trip_is_zero_copy_exact(self):
        _, string = _special_string(seed=3)
        engine = build_index(string)
        export = export_for_index(engine.index)
        block = None
        try:
            spec = export.spec()
            assert spec[0] == "shm" and spec[1] == export.name
            block, payload = attach_payload(*spec[1:])
            original = index_to_payload(engine.index)
            flat_original, flat_attached = original.flatten(), payload.flatten()
            assert set(flat_original) == set(flat_attached)
            for key in flat_original:
                assert flat_attached[key].dtype == flat_original[key].dtype, key
                assert np.array_equal(flat_attached[key], flat_original[key]), key
                assert not flat_attached[key].flags.writeable, key
            assert payload.manifest()["meta"] == original.manifest()["meta"]
            # The attached payload materializes a working index.
            restored = index_from_payload(payload)
            assert restored.query("A", 0.2) == engine.index.query("A", 0.2)
        finally:
            # Drop every ndarray view over block.buf before closing, as the
            # worker teardown path does; close() raises BufferError while
            # exports of the mapped buffer are alive.
            with contextlib.suppress(NameError):
                del payload, flat_attached, restored
            gc.collect()
            if block is not None:
                with contextlib.suppress(BufferError):
                    block.close()
            export.release()
        assert export.closed

    def test_refcounting_unlinks_at_zero(self):
        _, string = _special_string(seed=4)
        engine = build_index(string)
        export = export_for_index(engine.index)  # refcount 1
        export.acquire()  # refcount 2
        export.release()
        assert not export.closed
        export.release()
        assert export.closed
        with pytest.raises(ValidationError):
            export.acquire()

    def test_export_is_cached_per_index_and_recreated_after_close(self):
        _, string = _special_string(seed=5)
        engine = build_index(string)
        first = export_for_index(engine.index)
        second = export_for_index(engine.index)
        try:
            # Same live export, one more reference — not a second block.
            assert second is first
        finally:
            second.release()
            assert not first.closed
            first.release()
        assert first.closed
        replacement = export_for_index(engine.index)
        try:
            assert replacement is not first and not replacement.closed
        finally:
            replacement.release()


class TestProcessEngineBlockLifecycle:
    def test_blocks_released_on_close_without_dev_shm_leak(self):
        shm_dir = "/dev/shm"
        before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else None
        text, string = _special_string(seed=6)
        engine = build_sharded_index(
            string, shards=2, max_pattern_len=8, query_executor="process"
        )
        try:
            assert engine.count(text[:4], tau=0.2) >= 0
            exports = list(engine._shm_exports.values())
            assert len(exports) == 2
            assert not any(export.closed for export in exports)
        finally:
            engine.close()
        assert all(export.closed for export in exports)
        if before is not None:
            leaked = set(os.listdir(shm_dir)) - before
            assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    def test_pool_rebuild_reuses_live_blocks(self):
        # Crash recovery discards dead pools but must keep the exports: the
        # replacement workers re-attach to the same blocks by name instead
        # of re-exporting megabytes of arrays.
        text, string = _special_string(seed=7)
        engine = build_sharded_index(
            string, shards=2, max_pattern_len=8, query_executor="process"
        )
        try:
            baseline = engine.query(text[:5], tau=0.2)
            exports_before = dict(engine._shm_exports)
            pools = engine._ensure_process_pools()
            engine._discard_pools(pools)
            assert engine.query(text[:5], tau=0.2) == baseline
            assert dict(engine._shm_exports) == exports_before
            assert not any(export.closed for export in exports_before.values())
        finally:
            engine.close()

    def test_replicas_share_one_block_set(self):
        text, string = _special_string(seed=8)
        engine = build_sharded_index(
            string, shards=2, max_pattern_len=8, query_executor="process"
        )
        replica_set = ReplicaSet.from_engine(engine, replicas=3)
        exports = []
        try:
            block_names = set()
            for replica_engine in replica_set.engines:
                assert replica_engine.count(text[:4], tau=0.2) >= 0
                shard_exports = replica_engine._shm_exports
                assert len(shard_exports) == 2
                block_names.update(export.name for export in shard_exports.values())
                exports.extend(shard_exports.values())
            # 3 replicas x 2 shards attach to exactly 2 blocks in total.
            assert len(block_names) == 2
        finally:
            replica_set.close()
        assert all(export.closed for export in exports)


class TestCompactShardedEquivalenceMatrix:
    """{compact, wide} x {thread, process} vs the serial wide oracle.

    Two layered guarantees: the compact build answers **byte-identically**
    to the wide build under the same sharding and executor (narrowing
    must not perturb a single float), and both agree with the serial wide
    engine up to the usual chunk-local summation noise (the sharded
    engine sums chunk prefixes in a different order, so bit equality
    across shardings is not the contract — see ``test_sharding``).
    """

    @pytest.mark.parametrize("query_executor", ["thread", "process"])
    def test_fuzzed_answers_match_wide_and_serial_oracle(self, query_executor):
        from tests.api.test_sharding import assert_occurrences_equivalent

        text, string = _special_string(n=360, seed=9)
        serial = build_index(string)
        wide = build_sharded_index(
            string, shards=3, max_pattern_len=8, query_executor=query_executor
        )
        compacted = build_sharded_index(
            string,
            shards=3,
            max_pattern_len=8,
            compact=True,
            query_executor=query_executor,
        )
        rng = np.random.default_rng(10)
        try:
            for pattern, tau in _probes(text, rng):
                wide_matches = wide.query(pattern, tau)
                assert compacted.query(pattern, tau) == wide_matches, (
                    pattern,
                    tau,
                    query_executor,
                )
                assert_occurrences_equivalent(
                    serial.index.query(pattern, tau), wide_matches, tau=tau
                )
        finally:
            wide.close()
            compacted.close()
