"""Planner routing: every input shape selects the expected index class."""

import pytest

from repro.api import build_index, plan_index
from repro.core.approximate import ApproximateSubstringIndex
from repro.core.general_index import GeneralUncertainStringIndex
from repro.core.listing import UncertainStringListingIndex
from repro.core.simple_index import SimpleSpecialIndex
from repro.core.special_index import SpecialUncertainStringIndex
from repro.exceptions import ValidationError
from repro.strings import (
    CorrelationModel,
    CorrelationRule,
    SpecialUncertainString,
    UncertainString,
    UncertainStringCollection,
)


@pytest.fixture
def general_string():
    return UncertainString(
        [
            {"Q": 0.7, "S": 0.3},
            {"Q": 0.3, "P": 0.7},
            {"P": 1.0},
            {"A": 0.4, "F": 0.3, "P": 0.2, "Q": 0.1},
        ]
    )


@pytest.fixture
def special_string():
    return SpecialUncertainString(
        [("b", 0.4), ("a", 0.7), ("n", 0.5), ("a", 0.8), ("n", 0.9), ("a", 0.6)]
    )


@pytest.fixture
def collection():
    return UncertainStringCollection(
        [
            UncertainString([{"A": 0.6, "B": 0.4}, {"C": 1.0}]),
            UncertainString([{"A": 1.0}, {"B": 0.5, "C": 0.5}]),
        ]
    )


class TestAutoRouting:
    def test_plain_string_routes_to_special(self):
        plan = plan_index("banana")
        assert plan.kind == "special"
        assert plan.index_class is SpecialUncertainStringIndex

    def test_special_string_routes_to_special(self, special_string):
        plan = plan_index(special_string)
        assert plan.kind == "special"
        assert plan.tau_min == 0.0

    def test_single_character_uncertain_string_routes_to_special(self):
        string = UncertainString([{"a": 1.0}, {"b": 1.0}, {"a": 1.0}])
        assert plan_index(string).kind == "special"

    def test_general_string_routes_to_general(self, general_string):
        plan = plan_index(general_string, tau_min=0.1)
        assert plan.kind == "general"
        assert plan.index_class is GeneralUncertainStringIndex
        assert plan.tau_min == pytest.approx(0.1)

    def test_collection_routes_to_listing(self, collection):
        plan = plan_index(collection, tau_min=0.1)
        assert plan.kind == "listing"
        assert plan.index_class is UncertainStringListingIndex

    def test_sequence_of_documents_routes_to_listing(self, general_string):
        assert plan_index([general_string, general_string]).kind == "listing"

    def test_sequence_of_plain_strings_routes_to_listing(self):
        assert plan_index(["banana", "ananas"]).kind == "listing"

    def test_epsilon_routes_to_approximate(self, general_string):
        plan = plan_index(general_string, tau_min=0.1, epsilon=0.05)
        assert plan.kind == "approximate"
        assert plan.index_class is ApproximateSubstringIndex
        assert plan.options["epsilon"] == pytest.approx(0.05)

    def test_tight_budget_special_routes_to_simple(self, special_string):
        plan = plan_index(special_string, space_budget_bytes=10)
        assert plan.kind == "simple"
        assert plan.index_class is SimpleSpecialIndex

    def test_tight_budget_general_routes_to_approximate(self, general_string):
        plan = plan_index(general_string, tau_min=0.1, space_budget_bytes=10)
        assert plan.kind == "approximate"

    def test_large_budget_keeps_default_choice(self, general_string, special_string):
        assert (
            plan_index(general_string, tau_min=0.1, space_budget_bytes=10**12).kind
            == "general"
        )
        assert plan_index(special_string, space_budget_bytes=10**12).kind == "special"

    def test_correlated_single_character_string_stays_general(self):
        string = UncertainString(
            [{"a": 1.0}, {"b": 1.0}, {"z": 1.0}],
            correlations=CorrelationModel(
                [CorrelationRule(2, "z", 0, "a", 0.3, 0.4)]
            ),
        )
        assert plan_index(string, tau_min=0.1).kind == "general"

    def test_default_tau_min_applied(self, general_string):
        assert plan_index(general_string).tau_min == pytest.approx(0.1)

    def test_profile_and_reason_populated(self, general_string):
        plan = plan_index(general_string, tau_min=0.1)
        assert plan.reason
        assert plan.profile["shape"] == "general"
        assert plan.profile["length"] == 4
        assert plan.profile["alphabet_size"] == 5


class TestOverridesAndErrors:
    def test_explicit_kind_general_on_special_input(self, special_string):
        plan = plan_index(special_string, tau_min=0.1, kind="general")
        assert plan.kind == "general"

    def test_explicit_kind_simple(self, special_string):
        assert plan_index(special_string, kind="simple").kind == "simple"

    def test_special_kind_on_general_input_raises(self, general_string):
        with pytest.raises(ValidationError):
            plan_index(general_string, kind="special")

    def test_listing_kind_on_string_raises(self, general_string):
        with pytest.raises(ValidationError):
            plan_index(general_string, kind="listing")

    def test_non_listing_kind_on_collection_raises(self, collection):
        with pytest.raises(ValidationError):
            plan_index(collection, kind="general")

    def test_unknown_kind_raises(self, general_string):
        with pytest.raises(ValidationError):
            plan_index(general_string, kind="wavelet-tree")

    def test_empty_inputs_raise(self):
        with pytest.raises(ValidationError):
            plan_index("")
        with pytest.raises(ValidationError):
            plan_index([])
        with pytest.raises(ValidationError):
            plan_index(42)


class TestBuildIndex:
    @pytest.mark.parametrize(
        "maker, kwargs, expected",
        [
            (lambda f: "banana", {}, SpecialUncertainStringIndex),
            (lambda f: f["special"], {}, SpecialUncertainStringIndex),
            (lambda f: f["general"], {"tau_min": 0.1}, GeneralUncertainStringIndex),
            (
                lambda f: f["general"],
                {"tau_min": 0.1, "epsilon": 0.05},
                ApproximateSubstringIndex,
            ),
            (lambda f: f["collection"], {"tau_min": 0.1}, UncertainStringListingIndex),
            (lambda f: "banana", {"space_budget_bytes": 10}, SimpleSpecialIndex),
        ],
    )
    def test_builds_expected_class(
        self, general_string, special_string, collection, maker, kwargs, expected
    ):
        fixtures = {
            "general": general_string,
            "special": special_string,
            "collection": collection,
        }
        engine = build_index(maker(fixtures), **kwargs)
        assert isinstance(engine.index, expected)

    def test_general_engine_answers_match_direct_index(self, general_string):
        engine = build_index(general_string, tau_min=0.1)
        direct = GeneralUncertainStringIndex(general_string, tau_min=0.1)
        for pattern in ("QP", "PP", "P", "ZZ"):
            assert engine.query(pattern, tau=0.2) == direct.query(pattern, 0.2)

    def test_kind_override_on_plain_string(self):
        engine = build_index("banana", kind="general", tau_min=0.5)
        assert isinstance(engine.index, GeneralUncertainStringIndex)
        assert [occ.position for occ in engine.query("ana", tau=0.9)] == [1, 3]


class TestCalibration:
    """estimate_error feedback folds into the per-kind size estimates."""

    def test_first_observation_moves_the_next_estimate(self, general_string):
        from repro.api.planner import calibration_snapshot

        before = plan_index(general_string, tau_min=0.1)
        assert before.profile["calibration"]["observations"] == 0
        assert before.profile["calibration"]["correction"] == pytest.approx(1.0)
        assert before.profile["estimated_bytes"] == before.profile["raw_estimated_bytes"]

        engine = build_index(general_string, tau_min=0.1)
        ratio = engine.plan.profile["estimate_error"]["ratio"]
        snapshot = calibration_snapshot()["general"]
        assert snapshot["observations"] == 1
        # With one observation the correction IS the observed ratio.
        assert snapshot["correction"] == pytest.approx(ratio, rel=1e-9)

        after = plan_index(general_string, tau_min=0.1)
        assert after.profile["calibration"]["observations"] == 1
        assert after.profile["estimated_bytes"] == pytest.approx(
            after.profile["raw_estimated_bytes"] * ratio, abs=1.0
        )
        # The calibrated estimate now matches the observed size, so a
        # second build of the same input reports ~zero estimate error.
        engine2 = build_index(general_string, tau_min=0.1)
        assert abs(engine2.plan.profile["estimate_error"]["log2_error"]) < 0.01

    def test_decay_window_bounds_the_memory(self):
        from repro.api.planner import (
            CALIBRATION_WINDOW,
            _observe_calibration,
            calibration_snapshot,
            reset_calibration,
        )

        reset_calibration()
        for _ in range(50):
            _observe_calibration("special", 100, 200)  # ratio 2.0 forever
        state = calibration_snapshot()["special"]
        assert state["observations"] == 50
        assert state["window"] == CALIBRATION_WINDOW
        assert state["correction"] == pytest.approx(2.0, rel=1e-6)
        # One opposite observation moves it by ~1/window in log space.
        _observe_calibration("special", 200, 100)
        moved = calibration_snapshot()["special"]["correction"]
        import math

        assert math.log2(2.0) - math.log2(moved) == pytest.approx(
            2.0 / CALIBRATION_WINDOW, rel=1e-6
        )

    def test_clamp_bounds_wild_observations(self):
        from repro.api.planner import _observe_calibration, calibration_snapshot, reset_calibration

        reset_calibration()
        _observe_calibration("listing", 1, 10**12)
        assert calibration_snapshot()["listing"]["correction"] <= 2.0 ** 6.0

    def test_describe_surfaces_calibration(self, general_string):
        engine = build_index(general_string, tau_min=0.1)
        info = engine.describe()["plan"]["calibration"]
        assert info["kind"] == "general"
        assert set(info) == {"kind", "correction", "observations", "window"}

    def test_per_kind_isolation(self, general_string, special_string):
        from repro.api.planner import calibration_snapshot

        build_index(general_string, tau_min=0.1)
        snapshot = calibration_snapshot()
        assert "general" in snapshot and "special" not in snapshot
        build_index(special_string)
        assert "special" in calibration_snapshot()
