"""Result-cache invariants: hits, misses, LRU order, counters, immutability."""

import pytest

from repro.api import SearchRequest, build_index
from repro.api.cache import ResultCache
from repro.exceptions import ThresholdError, ValidationError
from repro.strings import UncertainString


@pytest.fixture
def engine(figure3_string):
    return build_index(figure3_string, tau_min=0.1)


@pytest.fixture
def listing_engine(figure2_collection):
    return build_index(figure2_collection, tau_min=0.05)


class TestResultCacheUnit:
    def test_put_get_round_trip(self):
        cache = ResultCache(4)
        cache.put(("a", 0.1, None, "general"), [1, 2, 3])
        assert cache.get(("a", 0.1, None, "general")) == (1, 2, 3)
        assert cache.stats()["hits"] == 1

    def test_miss_counts(self):
        cache = ResultCache(4)
        assert cache.get("absent") is None
        assert cache.stats() == {
            "enabled": True,
            "capacity": 4,
            "size": 0,
            "hits": 0,
            "misses": 1,
            "evictions": 0,
            "expirations": 0,
            "generation": 0,
            "ttl_seconds": None,
            "hit_rate": 0.0,
        }

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.get("a")  # refresh "a": now "b" is least recently used
        cache.put("c", [3])
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == (1,)
        assert cache.get("c") == (3,)
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.put("a", [9])  # overwrite refreshes recency too
        cache.put("c", [3])
        assert cache.get("a") == (9,)
        assert cache.get("b") is None

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put("a", [1])
        assert cache.get("a") is None
        assert not cache.enabled
        assert cache.stats()["misses"] == 0  # disabled caches do not count
        compute = lambda: [1]
        assert cache.wrap("a", compute) is compute

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            ResultCache(-1)

    def test_wrap_copies_on_hit(self):
        cache = ResultCache(4)
        evaluate = cache.wrap("k", lambda: [1, 2])
        first = evaluate()
        first.append(99)  # mutating a returned list must not poison the cache
        assert evaluate() == [1, 2]

    def test_clear_keeps_counters(self):
        cache = ResultCache(4)
        cache.put("a", [1])
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
        cache.reset_stats()
        assert cache.stats()["hits"] == 0


class TestEngineCaching:
    def test_hit_after_identical_request(self, engine):
        engine.search("PA", tau=0.2).matches
        engine.search("PA", tau=0.2).matches
        stats = engine.cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_miss_after_differing_tau_or_k(self, engine):
        engine.search("PA", tau=0.2).matches
        engine.search("PA", tau=0.3).matches           # different tau
        engine.search("PA", tau=0.2, top_k=1).matches  # different top_k
        stats = engine.cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 3

    def test_cached_answer_is_identical(self, engine):
        cold = engine.search("P", tau=0.1).matches
        warm = engine.search("P", tau=0.1).matches
        assert cold == warm
        assert engine.cache.stats()["hits"] == 1

    def test_top_k_routes_through_cache(self, engine):
        first = engine.top_k("P", 2)
        second = engine.top_k("P", 2)
        assert first == second
        assert engine.cache.stats()["hits"] == 1

    def test_describe_surfaces_counters(self, engine):
        engine.query("PA", tau=0.2)
        engine.query("PA", tau=0.2)
        engine.query("AT", tau=0.2)
        description = engine.describe()
        assert description["cache"]["hits"] == 1
        assert description["cache"]["misses"] == 2
        assert description["cache"]["size"] == 2
        assert description["cache"]["hit_rate"] == pytest.approx(1 / 3)

    def test_lazy_results_do_not_touch_the_cache(self, engine):
        engine.search("PA", tau=0.2)  # never consumed
        assert engine.cache.stats() == {
            "enabled": True,
            "capacity": 1024,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "expirations": 0,
            "generation": 0,
            "ttl_seconds": None,
            "hit_rate": 0.0,
        }

    def test_errors_are_not_cached(self, listing_engine):
        for _ in range(2):
            with pytest.raises(ThresholdError):
                listing_engine.query("B", tau=0.001)  # below tau_min
        stats = listing_engine.cache.stats()
        assert stats["size"] == 0
        assert stats["misses"] == 2

    def test_cache_size_zero_engine(self, figure3_string):
        engine = build_index(figure3_string, tau_min=0.1, cache_size=0)
        engine.query("PA", tau=0.2)
        engine.query("PA", tau=0.2)
        assert engine.cache.stats()["hits"] == 0
        assert not engine.describe()["cache"]["enabled"]

    def test_eviction_on_engine(self, figure3_string):
        engine = build_index(figure3_string, tau_min=0.1, cache_size=2)
        engine.query("P", tau=0.2)
        engine.query("A", tau=0.2)
        engine.query("F", tau=0.2)  # evicts "P"
        engine.query("P", tau=0.2)  # miss again
        stats = engine.cache.stats()
        assert stats["evictions"] >= 1
        assert stats["hits"] == 0

    def test_cached_results_never_mutated_by_pagination(self, engine):
        # Regression: paging a cached result (or mutating what it returns)
        # must not corrupt the stored answer.
        first = engine.search("P", tau=0.1)
        baseline = list(first.matches)
        page = first.page(0, 2)
        page.clear()
        first.matches.append("poison")
        second = engine.search("P", tau=0.1)
        assert second.matches == baseline
        assert engine.cache.stats()["hits"] == 1


class TestBatchCaching:
    """`Engine.search_many` must compose with the cache (satellite fix)."""

    def _consume(self, results):
        for result in results:
            result.matches

    def test_second_batch_is_all_cache_hits(self, engine):
        requests = [
            SearchRequest("PA", tau=0.1),
            SearchRequest("PA", tau=0.3),
            SearchRequest("P", tau=0.5),
            SearchRequest("AT", top_k=1, tau=0.2),
        ]
        self._consume(engine.search_many(requests))
        cold = engine.cache.stats()
        assert cold["hits"] == 0
        assert cold["misses"] == len(requests)

        self._consume(engine.search_many(requests))
        warm = engine.cache.stats()
        assert warm["misses"] == len(requests)          # no new misses
        assert warm["hits"] == len(requests)            # every request served hot

    def test_second_batch_is_all_hits_with_refinement(self, listing_engine):
        # On the listing engine the high-tau answer is derived by filtering;
        # the derived answer must be cached under its own key too.
        requests = [SearchRequest("B", tau=0.05), SearchRequest("B", tau=0.6)]
        self._consume(listing_engine.search_many(requests))
        self._consume(listing_engine.search_many(requests))
        stats = listing_engine.cache.stats()
        assert stats["hits"] == len(requests)
        assert stats["misses"] == len(requests)

    def test_batch_and_single_share_the_cache(self, engine):
        engine.query("PA", tau=0.2)
        results = engine.search_many([SearchRequest("PA", tau=0.2)])
        self._consume(results)
        assert engine.cache.stats()["hits"] == 1

    def test_batched_answers_match_direct_after_caching(self, engine):
        requests = [SearchRequest("PA", tau=0.1), SearchRequest("P", tau=0.4)]
        self._consume(engine.search_many(requests))
        for request in requests:
            direct = engine.index.query(
                request.pattern, request.resolve_tau(engine.tau_min)
            )
            assert engine.search(request).matches == direct

    def test_duplicate_requests_in_one_batch_probe_once(self, engine):
        requests = [SearchRequest("PA", tau=0.2)] * 3
        self._consume(engine.search_many(requests))
        stats = engine.cache.stats()
        # Dedupe shares one SearchResult, so the cache sees one lookup.
        assert stats["hits"] + stats["misses"] == 1


class TestGenerationAndTTL:
    """Index-generation tags and TTL expiry (serving invalidation)."""

    def test_bump_generation_invalidates_everything(self):
        cache = ResultCache(4)
        cache.put("a", [1])
        cache.put("b", [2])
        assert cache.get("a") == (1,)
        generation = cache.bump_generation()
        assert generation == 1
        assert cache.generation == 1
        assert cache.get("a") is None
        assert cache.get("b") is None
        # New-generation writes work normally.
        cache.put("a", [9])
        assert cache.get("a") == (9,)

    def test_old_generation_entries_age_out_by_lru(self):
        cache = ResultCache(2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.bump_generation()
        cache.put("c", [3])
        cache.put("d", [4])
        # Capacity 2: the two old-generation entries were evicted to make
        # room, so the store never grows past its bound across generations.
        assert len(cache) == 2
        assert cache.get("c") == (3,)
        assert cache.get("d") == (4,)

    def test_ttl_expires_entries_with_injected_clock(self):
        now = [0.0]
        cache = ResultCache(4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("a", [1])
        now[0] = 9.0
        assert cache.get("a") == (1,)  # still fresh
        now[0] = 20.5
        assert cache.get("a") is None  # expired -> miss
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["ttl_seconds"] == 10.0
        assert stats["size"] == 0  # expired entry was dropped

    def test_put_refreshes_ttl_stamp(self):
        now = [0.0]
        cache = ResultCache(4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("a", [1])
        now[0] = 8.0
        cache.put("a", [2])  # rewrite refreshes the stamp
        now[0] = 15.0
        assert cache.get("a") == (2,)

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValidationError):
            ResultCache(4, ttl_seconds=0.0)
        with pytest.raises(ValidationError):
            ResultCache(4, ttl_seconds=-1.0)

    def test_replace_index_cannot_serve_stale_hits(self, figure3_string):
        # Two different indexes behind one engine: after replace_index the
        # cached answers of the old index must be unreachable.
        engine = build_index(figure3_string, tau_min=0.1)
        other = build_index("banana" * 3)
        stale = engine.query("PA", tau=0.2)
        engine.replace_index(other.index, other.plan)
        assert engine.cache.generation == 1
        fresh = engine.query("PA", tau=0.2)
        assert fresh == other.query("PA", tau=0.2)
        assert fresh != stale

    def test_engine_cache_ttl_wiring(self, figure3_string):
        engine = build_index(figure3_string, tau_min=0.1, cache_ttl_seconds=60.0)
        assert engine.cache.ttl_seconds == 60.0
        assert engine.describe()["cache"]["ttl_seconds"] == 60.0

    def test_in_flight_evaluation_not_cached_across_generation_bump(self):
        # A slow evaluation racing a generation bump (index replaced while
        # the query runs) must not store the old index's answer as fresh.
        cache = ResultCache(4)

        def compute():
            cache.bump_generation()  # index swapped mid-evaluation
            return [1, 2, 3]

        evaluate = cache.wrap("k", compute)
        assert evaluate() == [1, 2, 3]  # the caller still gets the answer
        assert cache.get("k") is None  # but it was dropped, not cached
        assert len(cache) == 0

    def test_put_with_current_generation_stores(self):
        cache = ResultCache(4)
        cache.put("k", [1], generation=cache.generation)
        assert cache.get("k") == (1,)
        cache.put("stale", [2], generation=cache.generation - 1)
        assert cache.get("stale") is None

    def test_ttl_reachable_from_load_paths(self, figure3_string, tmp_path):
        from repro.api import load_index

        engine = build_index(figure3_string, tau_min=0.1)
        path = engine.save(tmp_path / "ttl")
        loaded = load_index(path, cache_ttl_seconds=30.0)
        assert loaded.cache.ttl_seconds == 30.0
        from repro.api import build_sharded_index

        sharded = build_sharded_index(
            "banana" * 10, shards=2, max_pattern_len=6, cache_ttl_seconds=15.0
        )
        assert sharded.cache.ttl_seconds == 15.0
        sharded_path = sharded.save(tmp_path / "ttl-sharded")
        sharded.close()
        reloaded = load_index(sharded_path, cache_ttl_seconds=20.0)
        assert reloaded.cache.ttl_seconds == 20.0
        reloaded.close()


class TestEagerTtlPurge:
    """Regression: expired entries must not occupy LRU capacity or inflate
    the reported occupancy.

    Pre-fix, TTL expiry happened only lazily inside ``get``: an expired
    entry nobody re-requested sat in the store indefinitely, counting
    toward capacity (forcing live entries out through LRU eviction) and
    toward ``len()`` / ``stats()['size']``.  Post-fix, ``put`` and
    ``stats`` purge expired entries eagerly, ticking the same
    ``expirations`` counter the lazy drop uses.
    """

    def test_expired_entries_do_not_evict_live_ones(self):
        now = [0.0]
        cache = ResultCache(2, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("a", [1])
        cache.put("b", [2])
        now[0] = 20.0  # both entries are past their TTL
        cache.put("c", [3])
        stats = cache.stats()
        # Pre-fix: "a" was LRU-evicted to make room for "c" while the
        # expired "b" stayed, so evictions=1 and the dead entry survived.
        assert stats["evictions"] == 0
        assert stats["expirations"] == 2
        assert len(cache) == 1
        assert cache.get("c") == (3,)

    def test_stats_reports_live_occupancy_only(self):
        now = [0.0]
        cache = ResultCache(8, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("a", [1])
        cache.put("b", [2])
        assert cache.stats()["size"] == 2
        now[0] = 11.0
        stats = cache.stats()
        # Pre-fix: size stayed 2 (the dead entries were never touched).
        assert stats["size"] == 0
        assert stats["expirations"] == 2
        assert len(cache) == 0

    def test_eager_and_lazy_expiry_share_the_counter(self):
        now = [0.0]
        cache = ResultCache(4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("a", [1])
        cache.put("b", [2])
        now[0] = 11.0
        assert cache.get("a") is None  # lazy drop in get(): expirations=1
        cache.put("c", [3])  # eager purge of "b": expirations=2
        stats = cache.stats()
        assert stats["expirations"] == 2
        assert stats["evictions"] == 0
        assert len(cache) == 1

    def test_no_ttl_means_no_purge_scan(self):
        cache = ResultCache(2)  # ttl_seconds=None
        cache.put("a", [1])
        cache.put("b", [2])
        cache.put("c", [3])  # plain LRU eviction still applies
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["expirations"] == 0
        assert len(cache) == 2
